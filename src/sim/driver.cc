#include "sim/driver.hh"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>

#include "gen/workload_config.hh"
#include "trace/trace_io.hh"
#include "util/work_pool.hh"

namespace tstream
{

std::string_view
traceKindName(TraceKind k)
{
    switch (k) {
      case TraceKind::MultiChip: return "multi-chip";
      case TraceKind::SingleChip: return "single-chip";
      case TraceKind::IntraChip: return "intra-chip";
    }
    return "?";
}

bool
parseShardSpec(std::string_view text, ShardSpec &out)
{
    const std::size_t slash = text.find('/');
    if (slash == std::string_view::npos || slash == 0 ||
        slash + 1 >= text.size())
        return false;
    const std::string k(text.substr(0, slash));
    const std::string n(text.substr(slash + 1));
    char *end = nullptr;
    const unsigned long ki = std::strtoul(k.c_str(), &end, 10);
    if (!end || *end != '\0')
        return false;
    const unsigned long ni = std::strtoul(n.c_str(), &end, 10);
    if (!end || *end != '\0')
        return false;
    if (ni == 0 || ki >= ni)
        return false;
    out.index = static_cast<unsigned>(ki);
    out.count = static_cast<unsigned>(ni);
    return true;
}

std::vector<Cell>
standardGrid(const std::vector<WorkloadKind> &workloads,
             const BenchBudgets &budgets)
{
    std::vector<Cell> grid;
    grid.reserve(workloads.size() * 2);
    for (WorkloadKind w : workloads) {
        for (SystemContext ctx :
             {SystemContext::MultiChip, SystemContext::SingleChip}) {
            Cell c;
            c.index = grid.size();
            c.cfg.workload = w;
            c.cfg.context = ctx;
            c.cfg.warmupInstructions = budgets.warmup;
            c.cfg.measureInstructions = budgets.measure;
            c.cfg.scale = budgets.scale;
            c.id = std::string(workloadName(w)) + "/" +
                   std::string(contextName(ctx));
            grid.push_back(std::move(c));
        }
    }
    return grid;
}

std::vector<Cell>
shardCells(const std::vector<Cell> &grid, const ShardSpec &shard)
{
    std::vector<Cell> mine;
    for (const Cell &c : grid)
        if (shard.owns(c.index))
            mine.push_back(c);
    return mine;
}

namespace
{

CellResult
runCell(const Cell &cell, const DriverOptions &opts)
{
    const auto t0 = std::chrono::steady_clock::now();

    CellResult out;
    out.cell = cell;

    ExperimentResult res;
    if (auto cached = traceCacheLoad(cell.cfg)) {
        res = std::move(*cached);
        out.cacheHit = true;
    } else {
        res = runExperiment(cell.cfg);
        traceCacheStore(cell.cfg, res);
    }
    out.instructions = res.instructions;

    auto analyze = [&](MissTrace &&trace, TraceKind kind) {
        RunOutput r;
        r.workload = cell.cfg.workload;
        r.kind = kind;
        r.trace = std::move(trace);
        if (opts.analyzeStreams) {
            r.streams = analyzeStreams(r.trace);
            r.modules = profileModules(r.trace, r.streams, res.registry);
        }
        return r;
    };

    if (cell.cfg.context == SystemContext::MultiChip) {
        out.runs.push_back(
            analyze(std::move(res.offChip), TraceKind::MultiChip));
    } else {
        out.runs.push_back(
            analyze(std::move(res.offChip), TraceKind::SingleChip));
        out.runs.push_back(analyze(opts.filterIntra
                                       ? res.intraChipOnChip()
                                       : std::move(res.intraChip),
                                   TraceKind::IntraChip));
    }

    out.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return out;
}

} // namespace

std::vector<CellResult>
runCells(const std::vector<Cell> &grid, const DriverOptions &opts)
{
    const std::vector<Cell> mine = shardCells(grid, opts.shard);

    std::vector<CellResult> out(mine.size());
    WorkPool pool(opts.jobs);
    for (std::size_t i = 0; i < mine.size(); ++i)
        pool.submit(
            [&, i] { out[i] = runCell(mine[i], opts); });
    pool.wait();
    return out;
}

// ---- bench command line -----------------------------------------------------

namespace
{

[[noreturn]] void
benchUsage(const char *benchName, const char *msg, int status)
{
    std::FILE *to = status == 0 ? stdout : stderr;
    if (msg)
        std::fprintf(to, "%s: %s\n\n", benchName, msg);
    std::fprintf(to,
        "usage: %s [options]\n"
        "\n"
        "options:\n"
        "  --quick        reduced smoke budgets (also: TSTREAM_QUICK=1)\n"
        "  --jobs N       worker threads for the cell pool\n"
        "                 (also: TSTREAM_JOBS=N; default: hardware)\n"
        "  --shard k/N    run only grid cells with index %% N == k\n"
        "                 (also: TSTREAM_SHARD=k/N; default 0/1)\n"
        "  --json PATH    write a machine-readable report (schema in\n"
        "                 docs/BENCHMARKING.md) next to the table\n"
        "  --resume       reuse cells already present in the existing\n"
        "                 --json report instead of re-running them\n"
        "                 (fails on schema or config-hash mismatch)\n"
        "  --workload F   run the workload config file F (grammar in\n"
        "                 docs/BENCHMARKING.md) instead of the full\n"
        "                 compiled-in sweep\n"
        "  --phases S     inline phase records for the PhasedMix\n"
        "                 workload, e.g. \"kv mix=0.9 dist=zipfian\n"
        "                 theta=0.99 duration=1500000; broker ...\"\n"
        "  --help         this message\n"
        "\n"
        "See docs/BENCHMARKING.md for sharded multi-process recipes\n"
        "and the trace cache (TSTREAM_TRACE_CACHE).\n",
        benchName);
    std::exit(status);
}

} // namespace

BenchOptions
parseBenchArgs(int argc, char **argv, const char *benchName)
{
    BenchOptions opts;
    opts.benchName = benchName;
    opts.quick = std::getenv("TSTREAM_QUICK") != nullptr;
    if (const char *env = std::getenv("TSTREAM_SHARD"))
        if (!parseShardSpec(env, opts.shard))
            benchUsage(benchName, "bad TSTREAM_SHARD (want k/N)", 2);

    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        auto value = [&](const char *what) -> const char * {
            if (i + 1 >= argc)
                benchUsage(benchName,
                           (std::string("missing value for ") + what)
                               .c_str(),
                           2);
            return argv[++i];
        };
        if (arg == "--quick") {
            opts.quick = true;
        } else if (arg == "--jobs") {
            const char *v = value("--jobs");
            char *end = nullptr;
            const long n = std::strtol(v, &end, 10);
            if (!end || *end != '\0' || n <= 0)
                benchUsage(benchName, "--jobs wants a positive integer",
                           2);
            opts.jobs = static_cast<unsigned>(n);
        } else if (arg == "--shard") {
            if (!parseShardSpec(value("--shard"), opts.shard))
                benchUsage(benchName, "--shard wants k/N with k < N", 2);
        } else if (arg == "--json") {
            opts.jsonPath = value("--json");
        } else if (arg == "--resume") {
            opts.resume = true;
        } else if (arg == "--workload") {
            opts.workloadFile = value("--workload");
        } else if (arg == "--phases") {
            opts.phasesSpec = value("--phases");
        } else if (arg == "--help" || arg == "-h") {
            benchUsage(benchName, nullptr, 0);
        } else {
            // Reject anything unrecognized: a typo like --qiuck must
            // not silently run at paper scale for hours.
            benchUsage(benchName,
                       (std::string("unknown option: ") +
                        std::string(arg))
                           .c_str(),
                       2);
        }
    }

    if (opts.resume && opts.jsonPath.empty())
        benchUsage(benchName, "--resume needs --json PATH (the report "
                              "to resume from)",
                   2);
    if (!opts.workloadFile.empty() && !opts.phasesSpec.empty())
        benchUsage(benchName,
                   "--workload and --phases are mutually exclusive "
                   "(a config file already carries its schedule)",
                   2);

    if (opts.quick) {
        opts.budgets.warmup = kQuickBudgets.warmupInstructions;
        opts.budgets.measure = kQuickBudgets.measureInstructions;
        opts.budgets.scale = kQuickBudgets.scale;
    }
    return opts;
}

std::vector<Cell>
benchGrid(const std::vector<WorkloadKind> &workloads,
          const BenchOptions &opts)
{
    const char *bench = opts.benchName.c_str();
    if (opts.workloadFile.empty() && opts.phasesSpec.empty())
        return standardGrid(workloads, opts.budgets);

    WorkloadKind kind;
    PhaseSchedule schedule;
    if (!opts.workloadFile.empty()) {
        WorkloadConfig config;
        std::string err;
        if (!config.loadFromFile(opts.workloadFile, err))
            benchUsage(bench, ("--workload: " + err).c_str(), 2);
        kind = config.kind;
        schedule = config.schedule;
    } else {
        std::string err;
        if (!parsePhasesSpec(opts.phasesSpec, schedule, err))
            benchUsage(bench, ("--phases: " + err).c_str(), 2);
        kind = WorkloadKind::PhasedMix;
    }

    if (std::find(workloads.begin(), workloads.end(), kind) ==
        workloads.end())
        benchUsage(bench,
                   (std::string("workload ") +
                    std::string(workloadName(kind)) +
                    " is not part of this bench's sweep")
                       .c_str(),
                   2);

    std::vector<Cell> grid = standardGrid({kind}, opts.budgets);
    for (Cell &c : grid)
        c.cfg.phases = schedule;
    return grid;
}

void
benchRejectWorkloadOverrides(const BenchOptions &opts)
{
    if (!opts.workloadFile.empty() || !opts.phasesSpec.empty())
        benchUsage(opts.benchName.c_str(),
                   "this bench runs a fixed grid; --workload/--phases "
                   "do not apply",
                   2);
}

// ---- trace cache ------------------------------------------------------------

std::string
traceCacheStem(const ExperimentConfig &cfg)
{
    const char *dir = std::getenv("TSTREAM_TRACE_CACHE");
    if (!dir || !*dir)
        return {};
    char hash[17];
    std::snprintf(hash, sizeof hash, "%016" PRIx64, configHash(cfg));
    return std::string(dir) + "/" +
           std::string(workloadName(cfg.workload)) + "-" +
           std::string(contextName(cfg.context)) + "-" + hash;
}

std::optional<ExperimentResult>
traceCacheLoad(const ExperimentConfig &cfg)
{
    const std::string stem = traceCacheStem(cfg);
    if (stem.empty())
        return std::nullopt;

    auto reader = TraceReader::open(stem + ".off.tst");
    if (!reader)
        return std::nullopt;
    auto offChip = reader->readAll();
    auto registry = reader->functions();
    if (!offChip || !registry)
        return std::nullopt;

    ExperimentResult res;
    res.offChip = std::move(*offChip);
    res.registry = std::move(*registry);
    res.instructions = res.offChip.instructions;
    if (cfg.context == SystemContext::SingleChip) {
        auto intra = loadTrace(stem + ".l1.tst");
        if (!intra)
            return std::nullopt;
        res.intraChip = std::move(*intra);
    }
    std::fprintf(stderr,
                 "[trace-cache] hit %s (skipping simulation)\n",
                 stem.c_str());
    return res;
}

namespace
{

/** Write via a writer-unique temp name, then rename into place. The
 *  pid + thread id makes the name unique across the concurrent
 *  processes that may race on one shared cache cell. */
bool
saveTraceAtomic(const MissTrace &trace, const std::string &path,
                const TraceWriteOptions &opts)
{
    char suffix[64];
    std::snprintf(suffix, sizeof suffix, ".tmp.%ld.%ld",
                  static_cast<long>(::getpid()),
                  static_cast<long>(
                      std::hash<std::thread::id>{}(
                          std::this_thread::get_id()) &
                      0x7fffffff));
    const std::string tmp = path + suffix;
    if (!saveTrace(trace, tmp, opts))
        return false;
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return true;
}

} // namespace

void
traceCacheStore(const ExperimentConfig &cfg,
                const ExperimentResult &res)
{
    const std::string stem = traceCacheStem(cfg);
    if (stem.empty())
        return;

    // Create the cache directory (and any shard-specific parents the
    // operator baked into TSTREAM_TRACE_CACHE) on first use instead of
    // failing every cell store against a missing directory.
    const std::filesystem::path dir =
        std::filesystem::path(stem).parent_path();
    std::error_code ec;
    if (!dir.empty() && !std::filesystem::exists(dir, ec)) {
        std::filesystem::create_directories(dir, ec);
        if (ec) {
            std::fprintf(stderr,
                         "[trace-cache] cannot create %s: %s\n",
                         dir.string().c_str(), ec.message().c_str());
            return;
        }
    }

    TraceWriteOptions opts;
    opts.configHash = configHash(cfg);
    opts.registry = &res.registry;
    opts.kind = TraceContentKind::OffChip;
    bool ok = saveTraceAtomic(res.offChip, stem + ".off.tst", opts);
    if (ok && cfg.context == SystemContext::SingleChip) {
        opts.kind = TraceContentKind::IntraChip;
        ok = saveTraceAtomic(res.intraChip, stem + ".l1.tst", opts);
    }
    std::fprintf(stderr, "[trace-cache] %s %s\n",
                 ok ? "saved" : "failed to save", stem.c_str());
}

} // namespace tstream
