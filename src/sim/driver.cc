#include "sim/driver.hh"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>

#include "gen/workload_config.hh"
#include "obs/telemetry.hh"
#include "trace/trace_io.hh"
#include "util/claim_file.hh"
#include "util/logging.hh"
#include "util/work_pool.hh"

namespace tstream
{

std::string_view
traceKindName(TraceKind k)
{
    switch (k) {
      case TraceKind::MultiChip: return "multi-chip";
      case TraceKind::SingleChip: return "single-chip";
      case TraceKind::IntraChip: return "intra-chip";
    }
    return "?";
}

bool
parseShardSpec(std::string_view text, ShardSpec &out)
{
    const std::size_t slash = text.find('/');
    if (slash == std::string_view::npos || slash == 0 ||
        slash + 1 >= text.size())
        return false;
    const std::string k(text.substr(0, slash));
    const std::string n(text.substr(slash + 1));
    char *end = nullptr;
    const unsigned long ki = std::strtoul(k.c_str(), &end, 10);
    if (!end || *end != '\0')
        return false;
    const unsigned long ni = std::strtoul(n.c_str(), &end, 10);
    if (!end || *end != '\0')
        return false;
    if (ni == 0 || ki >= ni)
        return false;
    out.index = static_cast<unsigned>(ki);
    out.count = static_cast<unsigned>(ni);
    return true;
}

std::vector<Cell>
standardGrid(const std::vector<WorkloadKind> &workloads,
             const BenchBudgets &budgets)
{
    std::vector<Cell> grid;
    grid.reserve(workloads.size() * 2);
    for (WorkloadKind w : workloads) {
        for (SystemContext ctx :
             {SystemContext::MultiChip, SystemContext::SingleChip}) {
            Cell c;
            c.index = grid.size();
            c.cfg.workload = w;
            c.cfg.context = ctx;
            c.cfg.warmupInstructions = budgets.warmup;
            c.cfg.measureInstructions = budgets.measure;
            c.cfg.scale = budgets.scale;
            c.id = std::string(workloadName(w)) + "/" +
                   std::string(contextName(ctx));
            grid.push_back(std::move(c));
        }
    }
    return grid;
}

std::vector<Cell>
shardCells(const std::vector<Cell> &grid, const ShardSpec &shard)
{
    std::vector<Cell> mine;
    for (const Cell &c : grid)
        if (shard.owns(c.index))
            mine.push_back(c);
    return mine;
}

namespace
{

CellResult
runCell(const Cell &cell, const DriverOptions &opts)
{
    const auto t0 = std::chrono::steady_clock::now();

    CellResult out;
    out.cell = cell;

    ExperimentResult res;
    if (auto cached = traceCacheLoad(cell.cfg)) {
        res = std::move(*cached);
        out.cacheHit = true;
    } else {
        telemetry::Span sim("simulate", "sim");
        if (sim.active())
            sim.arg("id", cell.id);
        res = runExperiment(cell.cfg);
        traceCacheStore(cell.cfg, res);
    }
    out.instructions = res.instructions;

    auto analyze = [&](MissTrace &&trace, TraceKind kind) {
        telemetry::Span span("analyze", "analysis");
        if (span.active()) {
            span.arg("id", cell.id);
            span.arg("kind", traceKindName(kind));
        }
        RunOutput r;
        r.workload = cell.cfg.workload;
        r.kind = kind;
        r.trace = std::move(trace);
        if (opts.analyzeStreams) {
            r.streams = analyzeStreams(r.trace);
            r.modules = profileModules(r.trace, r.streams, res.registry);
        }
        return r;
    };

    if (cell.cfg.context == SystemContext::MultiChip) {
        out.runs.push_back(
            analyze(std::move(res.offChip), TraceKind::MultiChip));
    } else {
        out.runs.push_back(
            analyze(std::move(res.offChip), TraceKind::SingleChip));
        out.runs.push_back(analyze(opts.filterIntra
                                       ? res.intraChipOnChip()
                                       : std::move(res.intraChip),
                                   TraceKind::IntraChip));
    }

    out.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    telemetry::count("driver.cells");
    telemetry::count(out.cacheHit ? "driver.cache_hit_cells"
                                  : "driver.cache_miss_cells");
    telemetry::observe("driver.cell_wall_ms", out.wallSeconds * 1e3);
    return out;
}

/** What one bounded attempt produced. */
struct AttemptOutcome
{
    bool ok = false;
    std::string error;
    CellResult result;
};

/** Shared between the driver and a timed attempt thread: the thread
 *  may be abandoned on timeout, so it publishes into shared_ptr state
 *  instead of the driver's stack. */
struct AttemptShared
{
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    AttemptOutcome out;
};

AttemptOutcome
attemptCell(const Cell &cell, const DriverOptions &opts,
            unsigned attempt)
{
    // One trace span per attempt: the whole cell — cache probe,
    // simulation, analysis — with enough args to find it from the
    // report row. Inner "simulate"/"analyze" spans nest under it.
    telemetry::Span span("cell", "driver");
    if (span.active()) {
        span.arg("id", cell.id);
        span.arg("workload", workloadName(cell.cfg.workload));
        span.arg("context", contextName(cell.cfg.context));
        span.arg("warmup", static_cast<std::int64_t>(
                               cell.cfg.warmupInstructions));
        span.arg("measure", static_cast<std::int64_t>(
                                cell.cfg.measureInstructions));
        span.arg("attempt", static_cast<std::int64_t>(attempt));
    }
    AttemptOutcome out;
    try {
        if (opts.testCellHook)
            opts.testCellHook(cell, attempt);
        out.result = runCell(cell, opts);
        out.ok = true;
    } catch (const std::exception &e) {
        out.error = std::string("exception: ") + e.what();
    } catch (...) {
        out.error = "exception: unknown";
    }
    if (span.active()) {
        span.arg("ok", static_cast<std::int64_t>(out.ok));
        if (out.ok)
            span.arg("cache_hit", static_cast<std::int64_t>(
                                      out.result.cacheHit));
    }
    return out;
}

/**
 * Run one cell under the options' RetryPolicy: each attempt is bounded
 * by retry.timeoutMs (enforced by running it on a dedicated thread and
 * abandoning the thread past the deadline — the simulator has no
 * cancellation points, so a stuck attempt keeps running detached and
 * publishes into shared state nobody reads); failures back off and
 * retry up to maxAttempts, then surface as a failure result.
 */
CellResult
runCellWithRetry(const Cell &cell, const DriverOptions &opts)
{
    const auto t0 = std::chrono::steady_clock::now();
    RetryState retry(opts.retry);

    for (;;) {
        const unsigned attempt = retry.beginAttempt(wallClockMs());

        AttemptOutcome out;
        if (opts.retry.timeoutMs <= 0) {
            out = attemptCell(cell, opts, attempt);
        } else {
            auto shared = std::make_shared<AttemptShared>();
            // Copy cell + opts: on timeout the thread outlives this
            // frame (and possibly the whole runCells call).
            std::thread worker(
                [shared, cell, opts, attempt] {
                    AttemptOutcome r = attemptCell(cell, opts, attempt);
                    std::lock_guard<std::mutex> lk(shared->mu);
                    shared->out = std::move(r);
                    shared->done = true;
                    shared->cv.notify_all();
                });
            std::unique_lock<std::mutex> lk(shared->mu);
            const bool finished = shared->cv.wait_for(
                lk, std::chrono::milliseconds(opts.retry.timeoutMs),
                [&] { return shared->done; });
            if (finished) {
                out = std::move(shared->out);
                lk.unlock();
                worker.join();
            } else {
                lk.unlock();
                worker.detach();
            }
        }

        const std::int64_t now = wallClockMs();
        RetryState::Decision d;
        if (out.ok) {
            d = retry.onSuccess(now);
        } else if (!out.error.empty()) {
            d = retry.onFailure(std::move(out.error), now);
        } else {
            d = retry.onTimeout(now);
            if (d.kind == RetryState::Decision::Kind::None)
                // Clock granularity: the wait expired but the ms clock
                // has not visibly passed the deadline yet.
                d = retry.onFailure(
                    "timeout after " +
                        std::to_string(opts.retry.timeoutMs) + "ms",
                    now);
        }

        switch (d.kind) {
          case RetryState::Decision::Kind::Done:
            out.result.attempts = retry.attempts();
            return out.result;
          case RetryState::Decision::Kind::RetryAt: {
            logf(LogLevel::Warn,
                 "driver: cell %s attempt %u failed (%s); retrying",
                 cell.id.c_str(), attempt,
                 retry.failureCause().c_str());
            const std::int64_t delay = d.retryAtMs - wallClockMs();
            if (delay > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delay));
            break;
          }
          case RetryState::Decision::Kind::Failed: {
            CellResult fail;
            fail.cell = cell;
            fail.failed = true;
            fail.failureCause = retry.failureCause();
            fail.attempts = retry.attempts();
            fail.wallSeconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            telemetry::count("driver.cell_failures");
            logf(LogLevel::Error,
                 "driver: cell %s FAILED after %u attempts: %s",
                 cell.id.c_str(), fail.attempts,
                 fail.failureCause.c_str());
            return fail;
          }
          case RetryState::Decision::Kind::None:
            break; // unreachable; loop again defensively
        }
    }
}

/** Claim key for a cell: grid index + config hash, so a stale claim
 *  directory from a different grid/budget never aliases. */
std::string
claimKeyFor(const Cell &cell)
{
    char buf[96];
    std::snprintf(buf, sizeof buf, "%zu-%016" PRIx64, cell.index,
                  configHash(cell.cfg));
    return buf;
}

/**
 * Dynamic-claiming executor: opts.jobs worker threads race (with every
 * other process sharing the claim directory) to claim cells, run each
 * claimed cell under retry/timeout, and publish done markers. A
 * background thread heartbeats all actively running claims. Returns
 * only the cells this worker executed, in grid order.
 */
std::vector<CellResult>
runCellsClaiming(const std::vector<Cell> &grid,
                 const DriverOptions &opts)
{
    ClaimDir::Options copts;
    copts.dir = opts.claim.dir;
    copts.owner = opts.claim.owner;
    copts.ttlMs = opts.claim.ttlMs;
    ClaimDir claims(copts);

    const std::int64_t beatMs =
        opts.claim.heartbeatMs > 0
            ? opts.claim.heartbeatMs
            : std::max<std::int64_t>(1, opts.claim.ttlMs / 3);
    const std::int64_t pollMs =
        std::clamp<std::int64_t>(opts.claim.ttlMs / 4, 50, 500);

    long dieAfter = 0;
    if (const char *env = std::getenv("TSTREAM_CLAIM_DIE_AFTER"))
        dieAfter = std::strtol(env, nullptr, 10);
    std::atomic<long> claimsWon{0};

    std::mutex resMu;
    std::vector<CellResult> results;

    // Heartbeat thread: beats every actively running claim so a slow
    // cell is not stolen mid-run. Workers register keys under hbMu.
    std::mutex hbMu;
    std::condition_variable hbCv;
    bool stop = false;
    std::vector<std::string> active;
    std::thread beater([&] {
        std::unique_lock<std::mutex> lk(hbMu);
        while (!stop) {
            hbCv.wait_for(lk, std::chrono::milliseconds(beatMs),
                          [&] { return stop; });
            if (stop)
                break;
            std::vector<std::string> keys = active;
            lk.unlock();
            for (const std::string &k : keys)
                claims.heartbeat(k);
            lk.lock();
        }
    });

    auto workerLoop = [&] {
        std::vector<std::size_t> pending(grid.size());
        for (std::size_t i = 0; i < grid.size(); ++i)
            pending[i] = i;

        while (!pending.empty()) {
            bool progress = false;
            std::vector<std::size_t> still;
            still.reserve(pending.size());
            for (std::size_t idx : pending) {
                const Cell &cell = grid[idx];
                const std::string key = claimKeyFor(cell);
                if (claims.done(key)) {
                    progress = true;
                    continue; // another worker finished it
                }
                std::string why;
                const ClaimDir::Outcome got = claims.tryClaim(key, &why);
                if (got == ClaimDir::Outcome::Done) {
                    progress = true;
                    continue;
                }
                if (got == ClaimDir::Outcome::Held) {
                    still.push_back(idx); // revisit next sweep
                    continue;
                }
                if (got == ClaimDir::Outcome::Error) {
                    // Claim directory unusable: record a failure row
                    // rather than spinning forever. merge() keeps the
                    // first copy if several workers hit this.
                    CellResult fail;
                    fail.cell = cell;
                    fail.failed = true;
                    fail.failureCause = "claim error: " + why;
                    fail.attempts = 0;
                    std::lock_guard<std::mutex> lk(resMu);
                    results.push_back(std::move(fail));
                    progress = true;
                    continue;
                }

                // Claimed. Fault injection first: die after the N-th
                // win, before the cell runs — the claim file is left
                // behind with no done marker, exactly the "worker died
                // mid-cell" shape the fleet tests need.
                const long won =
                    claimsWon.fetch_add(1, std::memory_order_relaxed) +
                    1;
                if (dieAfter > 0 && won >= dieAfter)
                    std::raise(SIGKILL);

                {
                    std::lock_guard<std::mutex> lk(hbMu);
                    active.push_back(key);
                }
                CellResult res = runCellWithRetry(cell, opts);
                {
                    std::lock_guard<std::mutex> lk(hbMu);
                    active.erase(std::remove(active.begin(),
                                             active.end(), key),
                                 active.end());
                }
                claims.markDone(key, res.failed
                                         ? "failed:" + res.failureCause
                                         : "ok");
                {
                    std::lock_guard<std::mutex> lk(resMu);
                    results.push_back(std::move(res));
                }
                progress = true;
            }
            pending = std::move(still);
            if (!pending.empty() && !progress)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(pollMs));
        }
    };

    unsigned jobs = opts.jobs ? opts.jobs : WorkPool::defaultJobs();
    jobs = static_cast<unsigned>(std::min<std::size_t>(
        std::max<std::size_t>(1, grid.size()), jobs));
    std::vector<std::thread> workers;
    workers.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i)
        workers.emplace_back(workerLoop);
    for (std::thread &w : workers)
        w.join();

    {
        std::lock_guard<std::mutex> lk(hbMu);
        stop = true;
    }
    hbCv.notify_all();
    beater.join();

    std::sort(results.begin(), results.end(),
              [](const CellResult &a, const CellResult &b) {
                  return a.cell.index < b.cell.index;
              });
    return results;
}

} // namespace

std::vector<CellResult>
runCells(const std::vector<Cell> &grid, const DriverOptions &opts)
{
    if (opts.claim.enabled())
        return runCellsClaiming(grid, opts);

    const std::vector<Cell> mine = shardCells(grid, opts.shard);

    std::vector<CellResult> out(mine.size());
    WorkPool pool(opts.jobs);
    for (std::size_t i = 0; i < mine.size(); ++i) {
        const std::int64_t submitUs =
            telemetry::enabled() ? telemetry::nowMicros() : 0;
        pool.submit([&, i, submitUs] {
            if (telemetry::enabled()) {
                // Queue wait vs run time: the dead time between
                // submit and dispatch, on the timeline and as a
                // histogram.
                const std::int64_t startUs = telemetry::nowMicros();
                telemetry::recordSpan("cell-queue-wait", "driver",
                                      submitUs, startUs, "id",
                                      mine[i].id);
                telemetry::observe(
                    "driver.queue_wait_ms",
                    static_cast<double>(startUs - submitUs) / 1e3);
            }
            out[i] = runCellWithRetry(mine[i], opts);
        });
    }
    pool.wait();
    return out;
}

// ---- bench command line -----------------------------------------------------

namespace
{

[[noreturn]] void
benchUsage(const char *benchName, const char *msg, int status,
           const char *extraUsage = nullptr)
{
    std::FILE *to = status == 0 ? stdout : stderr;
    if (msg)
        std::fprintf(to, "%s: %s\n\n", benchName, msg);
    std::fprintf(to,
        "usage: %s [options]\n"
        "\n"
        "options:\n"
        "  --quick        reduced smoke budgets (also: TSTREAM_QUICK=1)\n"
        "  --jobs N       worker threads for the cell pool\n"
        "                 (also: TSTREAM_JOBS=N; default: hardware)\n"
        "  --shard k/N    run only grid cells with index %% N == k\n"
        "                 (also: TSTREAM_SHARD=k/N; default 0/1)\n"
        "  --json PATH    write a machine-readable report (schema in\n"
        "                 docs/BENCHMARKING.md) next to the table\n"
        "  --resume       reuse cells already present in the existing\n"
        "                 --json report instead of re-running them\n"
        "                 (fails on schema or config-hash mismatch)\n"
        "  --workload F   run the workload config file F (grammar in\n"
        "                 docs/BENCHMARKING.md) instead of the full\n"
        "                 compiled-in sweep\n"
        "  --phases S     inline phase records for the PhasedMix\n"
        "                 workload, e.g. \"kv mix=0.9 dist=zipfian\n"
        "                 theta=0.99 duration=1500000; broker ...\"\n"
        "  --claim-session ID\n"
        "                 drain the grid by dynamic work claiming:\n"
        "                 workers sharing TSTREAM_TRACE_CACHE and the\n"
        "                 session id race on atomic claim files, so a\n"
        "                 dead worker's cells are re-run elsewhere\n"
        "                 (also: TSTREAM_CLAIM_SESSION; requires\n"
        "                 TSTREAM_TRACE_CACHE; excludes --shard and\n"
        "                 --resume)\n"
        "  --claim-ttl MS heartbeat staleness before a claim may be\n"
        "                 stolen (also: TSTREAM_CLAIM_TTL_MS;\n"
        "                 default 30000)\n"
        "  --heartbeat MS heartbeat period for running claims (also:\n"
        "                 TSTREAM_HEARTBEAT_MS; default: ttl/3)\n"
        "  --cell-timeout MS\n"
        "                 per-attempt cell timeout; 0 = none (also:\n"
        "                 TSTREAM_CELL_TIMEOUT_MS)\n"
        "  --cell-retries N\n"
        "                 attempts per cell before it becomes a\n"
        "                 failure row in the report (also:\n"
        "                 TSTREAM_CELL_RETRIES; default 3)\n"
        "  --telemetry-out PATH\n"
        "                 record run telemetry and write the metrics\n"
        "                 JSON to PATH (and the Chrome trace-event\n"
        "                 timeline to PATH's .trace.json sibling) at\n"
        "                 exit (also: TSTREAM_TELEMETRY=PATH; see\n"
        "                 docs/OBSERVABILITY.md)\n"
        "  --help         this message\n",
        benchName);
    if (extraUsage)
        std::fputs(extraUsage, to);
    std::fputs(
        "\n"
        "See docs/BENCHMARKING.md for sharded and fleet multi-process\n"
        "recipes and the trace cache (TSTREAM_TRACE_CACHE).\n",
        to);
    std::exit(status);
}

/** Parse a non-negative integer CLI/env value or die with usage. */
long
parsePositive(const char *benchName, const char *what, const char *v,
              bool allowZero)
{
    char *end = nullptr;
    const long n = std::strtol(v, &end, 10);
    if (!end || *end != '\0' || n < 0 || (!allowZero && n == 0))
        benchUsage(benchName,
                   (std::string(what) + " wants a " +
                    (allowZero ? "non-negative" : "positive") +
                    " integer")
                       .c_str(),
                   2);
    return n;
}

} // namespace

std::string
BenchOptions::claimDir() const
{
    if (claimSession.empty())
        return {};
    const char *cache = std::getenv("TSTREAM_TRACE_CACHE");
    if (!cache || !*cache)
        return {};
    return std::string(cache) + "/claims/" + claimSession + "/" +
           benchName;
}

BenchOptions
parseBenchArgs(int argc, char **argv, const char *benchName,
               const BenchExtraArgs *extra)
{
    const char *extraUsage = extra ? extra->usage : nullptr;
    BenchOptions opts;
    opts.benchName = benchName;
    opts.quick = std::getenv("TSTREAM_QUICK") != nullptr;
    if (const char *env = std::getenv("TSTREAM_SHARD"))
        if (!parseShardSpec(env, opts.shard))
            benchUsage(benchName, "bad TSTREAM_SHARD (want k/N)", 2);
    if (const char *env = std::getenv("TSTREAM_CLAIM_SESSION"))
        opts.claimSession = env;
    if (const char *env = std::getenv("TSTREAM_CLAIM_TTL_MS"))
        opts.claimTtlMs =
            parsePositive(benchName, "TSTREAM_CLAIM_TTL_MS", env, false);
    if (const char *env = std::getenv("TSTREAM_HEARTBEAT_MS"))
        opts.heartbeatMs =
            parsePositive(benchName, "TSTREAM_HEARTBEAT_MS", env, true);
    if (const char *env = std::getenv("TSTREAM_CELL_TIMEOUT_MS"))
        opts.cellTimeoutMs = parsePositive(
            benchName, "TSTREAM_CELL_TIMEOUT_MS", env, true);
    if (const char *env = std::getenv("TSTREAM_CELL_RETRIES"))
        opts.cellRetries = static_cast<unsigned>(parsePositive(
            benchName, "TSTREAM_CELL_RETRIES", env, false));

    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        auto value = [&](const char *what) -> const char * {
            if (i + 1 >= argc)
                benchUsage(benchName,
                           (std::string("missing value for ") + what)
                               .c_str(),
                           2, extraUsage);
            return argv[++i];
        };
        if (arg == "--quick") {
            opts.quick = true;
        } else if (arg == "--jobs") {
            const char *v = value("--jobs");
            char *end = nullptr;
            const long n = std::strtol(v, &end, 10);
            if (!end || *end != '\0' || n <= 0)
                benchUsage(benchName, "--jobs wants a positive integer",
                           2);
            opts.jobs = static_cast<unsigned>(n);
        } else if (arg == "--shard") {
            if (!parseShardSpec(value("--shard"), opts.shard))
                benchUsage(benchName, "--shard wants k/N with k < N", 2);
        } else if (arg == "--json") {
            opts.jsonPath = value("--json");
        } else if (arg == "--resume") {
            opts.resume = true;
        } else if (arg == "--workload") {
            opts.workloadFile = value("--workload");
        } else if (arg == "--phases") {
            opts.phasesSpec = value("--phases");
        } else if (arg == "--claim-session") {
            opts.claimSession = value("--claim-session");
        } else if (arg == "--claim-ttl") {
            opts.claimTtlMs = parsePositive(
                benchName, "--claim-ttl", value("--claim-ttl"), false);
        } else if (arg == "--heartbeat") {
            opts.heartbeatMs = parsePositive(
                benchName, "--heartbeat", value("--heartbeat"), true);
        } else if (arg == "--cell-timeout") {
            opts.cellTimeoutMs =
                parsePositive(benchName, "--cell-timeout",
                              value("--cell-timeout"), true);
        } else if (arg == "--cell-retries") {
            opts.cellRetries = static_cast<unsigned>(
                parsePositive(benchName, "--cell-retries",
                              value("--cell-retries"), false));
        } else if (arg == "--telemetry-out") {
            opts.telemetryOut = value("--telemetry-out");
        } else if (arg == "--help" || arg == "-h") {
            benchUsage(benchName, nullptr, 0, extraUsage);
        } else if (extra && extra->handler &&
                   extra->handler(arg, value)) {
            // Consumed by the bench's extension flags.
        } else {
            // Reject anything unrecognized: a typo like --qiuck must
            // not silently run at paper scale for hours.
            benchUsage(benchName,
                       (std::string("unknown option: ") +
                        std::string(arg))
                           .c_str(),
                       2, extraUsage);
        }
    }

    if (opts.resume && opts.jsonPath.empty())
        benchUsage(benchName, "--resume needs --json PATH (the report "
                              "to resume from)",
                   2);
    if (!opts.workloadFile.empty() && !opts.phasesSpec.empty())
        benchUsage(benchName,
                   "--workload and --phases are mutually exclusive "
                   "(a config file already carries its schedule)",
                   2);
    if (!opts.claimSession.empty()) {
        const char *cache = std::getenv("TSTREAM_TRACE_CACHE");
        if (!cache || !*cache)
            benchUsage(benchName,
                       "--claim-session needs TSTREAM_TRACE_CACHE set "
                       "(the claim directory lives in the shared "
                       "cache)",
                       2);
        if (opts.shard.count > 1)
            benchUsage(benchName,
                       "--claim-session and --shard are mutually "
                       "exclusive (dynamic claiming replaces static "
                       "sharding)",
                       2);
        if (opts.resume)
            benchUsage(benchName,
                       "--claim-session and --resume are mutually "
                       "exclusive (claiming workers skip done cells "
                       "via the claim directory instead)",
                       2);
    }

    if (extra && extra->validate) {
        const std::string diag = extra->validate(opts);
        if (!diag.empty())
            benchUsage(benchName, diag.c_str(), 2, extraUsage);
    }

    if (opts.quick) {
        opts.budgets.warmup = kQuickBudgets.warmupInstructions;
        opts.budgets.measure = kQuickBudgets.measureInstructions;
        opts.budgets.scale = kQuickBudgets.scale;
    }
    if (!opts.telemetryOut.empty())
        telemetry::enable(opts.telemetryOut);
    return opts;
}

std::vector<Cell>
benchGrid(const std::vector<WorkloadKind> &workloads,
          const BenchOptions &opts)
{
    const char *bench = opts.benchName.c_str();
    if (opts.workloadFile.empty() && opts.phasesSpec.empty())
        return standardGrid(workloads, opts.budgets);

    WorkloadKind kind;
    PhaseSchedule schedule;
    if (!opts.workloadFile.empty()) {
        WorkloadConfig config;
        std::string err;
        if (!config.loadFromFile(opts.workloadFile, err))
            benchUsage(bench, ("--workload: " + err).c_str(), 2);
        kind = config.kind;
        schedule = config.schedule;
    } else {
        std::string err;
        if (!parsePhasesSpec(opts.phasesSpec, schedule, err))
            benchUsage(bench, ("--phases: " + err).c_str(), 2);
        kind = WorkloadKind::PhasedMix;
    }

    if (std::find(workloads.begin(), workloads.end(), kind) ==
        workloads.end())
        benchUsage(bench,
                   (std::string("workload ") +
                    std::string(workloadName(kind)) +
                    " is not part of this bench's sweep")
                       .c_str(),
                   2);

    std::vector<Cell> grid = standardGrid({kind}, opts.budgets);
    for (Cell &c : grid)
        c.cfg.phases = schedule;
    return grid;
}

void
benchRejectWorkloadOverrides(const BenchOptions &opts)
{
    if (!opts.workloadFile.empty() || !opts.phasesSpec.empty())
        benchUsage(opts.benchName.c_str(),
                   "this bench runs a fixed grid; --workload/--phases "
                   "do not apply",
                   2);
}

// ---- trace cache ------------------------------------------------------------

std::string
traceCacheStem(const ExperimentConfig &cfg)
{
    const char *dir = std::getenv("TSTREAM_TRACE_CACHE");
    if (!dir || !*dir)
        return {};
    char hash[17];
    std::snprintf(hash, sizeof hash, "%016" PRIx64, configHash(cfg));
    return std::string(dir) + "/" +
           std::string(workloadName(cfg.workload)) + "-" +
           std::string(contextName(cfg.context)) + "-" + hash;
}

std::optional<ExperimentResult>
traceCacheLoad(const ExperimentConfig &cfg)
{
    const std::string stem = traceCacheStem(cfg);
    if (stem.empty())
        return std::nullopt;

    auto reader = TraceReader::open(stem + ".off.tst");
    if (!reader) {
        telemetry::count("trace_cache.misses");
        return std::nullopt;
    }
    auto offChip = reader->readAll();
    auto registry = reader->functions();
    if (!offChip || !registry) {
        telemetry::count("trace_cache.misses");
        return std::nullopt;
    }

    ExperimentResult res;
    res.offChip = std::move(*offChip);
    res.registry = std::move(*registry);
    res.instructions = res.offChip.instructions;
    if (cfg.context == SystemContext::SingleChip) {
        auto intra = loadTrace(stem + ".l1.tst");
        if (!intra) {
            telemetry::count("trace_cache.misses");
            return std::nullopt;
        }
        res.intraChip = std::move(*intra);
    }
    telemetry::count("trace_cache.hits");
    if (telemetry::enabled()) {
        std::error_code ec;
        std::uint64_t bytes = 0;
        for (const char *suffix : {".off.tst", ".l1.tst"}) {
            const auto sz =
                std::filesystem::file_size(stem + suffix, ec);
            if (!ec)
                bytes += sz;
        }
        telemetry::count("trace_cache.bytes_read", bytes);
    }
    logDebug("trace-cache: hit " + stem + " (skipping simulation)");
    return res;
}

namespace
{

/** Write via a writer-unique temp name, then rename into place. The
 *  pid + thread id makes the name unique across the concurrent
 *  processes that may race on one shared cache cell. */
bool
saveTraceAtomic(const MissTrace &trace, const std::string &path,
                const TraceWriteOptions &opts)
{
    char suffix[64];
    std::snprintf(suffix, sizeof suffix, ".tmp.%ld.%ld",
                  static_cast<long>(::getpid()),
                  static_cast<long>(
                      std::hash<std::thread::id>{}(
                          std::this_thread::get_id()) &
                      0x7fffffff));
    const std::string tmp = path + suffix;
    if (!saveTrace(trace, tmp, opts))
        return false;
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return true;
}

} // namespace

void
traceCacheStore(const ExperimentConfig &cfg,
                const ExperimentResult &res)
{
    const std::string stem = traceCacheStem(cfg);
    if (stem.empty())
        return;

    // Create the cache directory (and any shard-specific parents the
    // operator baked into TSTREAM_TRACE_CACHE) on first use instead of
    // failing every cell store against a missing directory.
    const std::filesystem::path dir =
        std::filesystem::path(stem).parent_path();
    std::error_code ec;
    if (!dir.empty() && !std::filesystem::exists(dir, ec)) {
        std::filesystem::create_directories(dir, ec);
        if (ec) {
            logWarn("trace-cache: cannot create " + dir.string() +
                    ": " + ec.message());
            return;
        }
    }

    TraceWriteOptions opts;
    opts.configHash = configHash(cfg);
    opts.registry = &res.registry;
    opts.kind = TraceContentKind::OffChip;
    bool ok = saveTraceAtomic(res.offChip, stem + ".off.tst", opts);
    if (ok && cfg.context == SystemContext::SingleChip) {
        opts.kind = TraceContentKind::IntraChip;
        ok = saveTraceAtomic(res.intraChip, stem + ".l1.tst", opts);
    }
    if (ok) {
        telemetry::count("trace_cache.stores");
        if (telemetry::enabled()) {
            std::error_code sec;
            std::uint64_t bytes = 0;
            for (const char *suffix : {".off.tst", ".l1.tst"}) {
                const auto sz =
                    std::filesystem::file_size(stem + suffix, sec);
                if (!sec)
                    bytes += sz;
            }
            telemetry::count("trace_cache.bytes_written", bytes);
        }
        logDebug("trace-cache: saved " + stem);
    } else {
        telemetry::count("trace_cache.store_failures");
        logWarn("trace-cache: failed to save " + stem);
    }
}

} // namespace tstream
