/**
 * @file
 * Key-value store workload: a memcached-shaped cache server under
 * read-heavy network load.
 *
 * The request path mirrors a production cache node: a poll(2) accept
 * loop, worker threads, NIC DMA into reused per-connection network
 * buffers, read(2) copyout into worker request buffers, the store
 * engine's hash-index walk and slab/LRU traffic (src/kv/kvstore.hh),
 * and IP packet assembly for the response — GET hits stream the value
 * straight from the slab through the checksum/packetization pass.
 * Misses are filled with a SET, as a cache-aside client would.
 */

#ifndef TSTREAM_SIM_KV_WORKLOAD_HH
#define TSTREAM_SIM_KV_WORKLOAD_HH

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "gen/key_chooser.hh"
#include "kv/kvstore.hh"
#include "sim/workload.hh"

namespace tstream
{

/** Tunables of the KV workload (server knobs + engine config). */
struct KvAppConfig
{
    KvConfig store;
    unsigned workers = 32;
    /** Modeled connection pool (stands in for thousands of clients). */
    unsigned connections = 192;
    /** Requests served per worker quantum. */
    unsigned batch = 3;
    double getFraction = 0.85;
    double deleteFraction = 0.03;
    /**
     * Key popularity override from a workload config; nullopt = the
     * historical zipfian(store.zipf) sampler (bit-identical traces).
     */
    std::optional<KeyDistSpec> keyDist;

    void
    rescale(double s)
    {
        store.rescale(s);
        workers = std::max(4u, static_cast<unsigned>(workers * s));
        connections =
            std::max(16u, static_cast<unsigned>(connections * s));
    }
};

/** The key-value store application. */
class KvWorkload : public Workload
{
  public:
    explicit KvWorkload(const KvAppConfig &cfg = {})
        : cfg_(cfg)
    {
    }

    void setup(Kernel &kern) override;

    std::string_view name() const override { return "KVstore"; }

    std::uint64_t requestsServed() const { return served_; }
    const KvStore &store() const { return *store_; }

  private:
    class Listener;
    class Worker;

    /** Shared server state. */
    struct Shared
    {
        std::unique_ptr<KvStore> store;

        // Per-connection kernel state.
        std::vector<std::uint32_t> connFd;
        std::vector<Addr> connPcb;
        std::vector<Addr> connNetbuf; ///< reused NIC landing buffers

        // Work distribution.
        std::deque<std::uint32_t> pendingConns;
        std::deque<std::uint32_t> freeConns;
        std::unique_ptr<SimCondVar> workCv;

        // Per-worker request/response buffers.
        std::vector<Addr> reqBuf, respBuf;

        std::unique_ptr<KeyChooser> keyDist;
        ProcDesc serverProc{};
        FnId fnParse = 0;
    };

    KvAppConfig cfg_;
    Shared sh_;
    KvStore *store_ = nullptr;
    std::uint64_t served_ = 0;
};

} // namespace tstream

#endif // TSTREAM_SIM_KV_WORKLOAD_HH
