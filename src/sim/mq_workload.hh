/**
 * @file
 * Message-broker workload: producers publish event streams into the
 * broker's per-topic segmented logs; fanned-out consumers replay them.
 *
 * The delivery path is the event-streaming scenario of Barga et al.'s
 * "Consistent Streaming Through Time": each subscribed consumer
 * replays, in order, the block sequence its producer appended, so the
 * same miss sequences recur once per consumer per retention window —
 * textbook temporal streams. Producers receive events from the
 * network (NIC DMA + copyout), the broker appends into recycled
 * segments (src/mq/broker.hh), and consumers push deliveries out
 * through IP packet assembly. Consumers block on per-topic condition
 * variables when caught up; publishes wake them (dispatcher traffic).
 */

#ifndef TSTREAM_SIM_MQ_WORKLOAD_HH
#define TSTREAM_SIM_MQ_WORKLOAD_HH

#include <memory>
#include <optional>
#include <vector>

#include "gen/key_chooser.hh"
#include "mq/broker.hh"
#include "sim/workload.hh"

namespace tstream
{

/** Tunables of the broker workload (server knobs + engine config). */
struct MqAppConfig
{
    MqConfig broker;
    unsigned producers = 12;
    unsigned consumers = 24;
    /** Topics each consumer subscribes to. */
    unsigned subscriptionsPerConsumer = 3;
    /** Messages appended per producer quantum. */
    unsigned publishBatch = 3;
    /** Max bytes replayed per consumer quantum. */
    std::uint32_t consumeBytes = 8 * 1024;
    /**
     * Topic popularity override from a workload config; nullopt = the
     * historical zipfian(broker.zipf) sampler (bit-identical traces).
     */
    std::optional<KeyDistSpec> topicDist;

    void
    rescale(double s)
    {
        broker.rescale(s);
        producers = std::max(2u, static_cast<unsigned>(producers * s));
        consumers = std::max(4u, static_cast<unsigned>(consumers * s));
    }
};

/** The message-broker application. */
class MqWorkload : public Workload
{
  public:
    explicit MqWorkload(const MqAppConfig &cfg = {})
        : cfg_(cfg)
    {
    }

    void setup(Kernel &kern) override;

    std::string_view name() const override { return "Broker"; }

    const Broker &broker() const { return *broker_; }

  private:
    class Listener;
    class Producer;
    class Consumer;

    /** Shared broker-node state. */
    struct Shared
    {
        std::unique_ptr<Broker> broker;
        std::unique_ptr<KeyChooser> topicDist;

        // Producer-side network state.
        std::vector<std::uint32_t> prodFd;
        std::vector<Addr> prodNetbuf;
        std::vector<Addr> prodBuf; ///< user-space staging

        // Consumer-side delivery state.
        std::vector<Addr> consPcb;
        std::vector<Addr> consBuf;
        std::vector<std::uint32_t> consFd;

        /** One cv per topic; publishes wake waiting subscribers. */
        std::vector<std::unique_ptr<SimCondVar>> topicCv;

        ProcDesc brokerProc{};
    };

    MqAppConfig cfg_;
    Shared sh_;
    Broker *broker_ = nullptr;
};

} // namespace tstream

#endif // TSTREAM_SIM_MQ_WORKLOAD_HH
