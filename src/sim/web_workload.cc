#include "sim/web_workload.hh"

#include <algorithm>

namespace tstream
{

namespace
{
/** FastCGI request/response payloads move in mblk-sized chunks. */
constexpr std::uint32_t kPipeChunk = 1536;
constexpr std::uint32_t kRequestBytes = 600;

/** Transfer @p len bytes into @p pipe in chunks. */
void
pipePut(SysCtx &ctx, StreamsQueue &pipe, Addr src, std::uint32_t len)
{
    std::uint32_t off = 0;
    while (off < len) {
        const std::uint32_t c = std::min(kPipeChunk, len - off);
        pipe.put(ctx, src + off, c);
        off += c;
    }
}

/** Drain @p pipe into @p dst; returns bytes delivered. */
std::uint32_t
pipeDrain(SysCtx &ctx, StreamsQueue &pipe, Addr dst)
{
    std::uint32_t off = 0;
    while (true) {
        const std::uint32_t got = pipe.get(ctx, dst + off);
        if (got == 0)
            break;
        off += got;
    }
    return off;
}
} // namespace

/** poll(2) accept loop: admits connections and wakes idle workers. */
class WebWorkload::Listener : public Task
{
  public:
    explicit Listener(WebWorkload &w)
        : w_(w)
    {
    }

    RunResult
    run(SysCtx &ctx) override
    {
        auto &sh = w_.sh_;

        // Most quanta the listener is parked in poll(2) waiting for
        // the timeout; only a fraction return with ready descriptors.
        if (ctx.rng().chance(0.6)) {
            ctx.exec(250);
            return RunResult::Yield;
        }

        // Poll a window of connection descriptors; the window start
        // depends on which clients are active, i.e. effectively
        // random, and the window length breathes with load.
        const unsigned window =
            24 + static_cast<unsigned>(ctx.rng().below(17));
        cursor_ = static_cast<std::uint32_t>(
            ctx.rng().below(sh.connFd.size()));
        std::vector<std::uint32_t> fds;
        for (unsigned i = 0; i < window; ++i)
            fds.push_back(
                sh.connFd[(cursor_ + i) % sh.connFd.size()]);
        ctx.kernel().syscalls().poll(ctx, sh.serverProc, fds);

        // Admit a burst of ready connections in arrival order, which
        // is effectively random across the client population.
        const unsigned burst =
            1 + static_cast<unsigned>(ctx.rng().below(5));
        for (unsigned i = 0; i < burst && !sh.freeConns.empty(); ++i) {
            const std::size_t pick =
                ctx.rng().below(sh.freeConns.size());
            std::swap(sh.freeConns[pick], sh.freeConns.front());
            const std::uint32_t conn = sh.freeConns.front();
            sh.freeConns.pop_front();
            sh.pendingConns.push_back(conn);
            // Accept queue manipulation (server user space).
            ctx.userWrite(sh.workQueueBlock, 32, sh.fnQueue);
            ctx.kernel().cvWake(ctx, *sh.workCv);
        }
        return RunResult::Yield;
    }

  private:
    WebWorkload &w_;
    std::uint32_t cursor_ = 0;
};

/** HTTP worker: serves static files or dispatches to FastCGI perl. */
class WebWorkload::Worker : public Task
{
  public:
    Worker(WebWorkload &w, std::uint32_t id)
        : w_(w), id_(id)
    {
    }

    RunResult
    run(SysCtx &ctx) override
    {
        auto &sh = w_.sh_;
        if (state_ == State::AwaitResponse)
            return finishDynamic(ctx);

        for (unsigned b = 0; b < w_.cfg_.batch; ++b) {
            if (sh.pendingConns.empty())
                break;
            const std::uint32_t conn = sh.pendingConns.front();
            sh.pendingConns.pop_front();
            ctx.userRead(sh.workQueueBlock, 32, sh.fnQueue);

            const bool dynamic =
                ctx.rng().chance(w_.cfg_.dynamicFraction);
            receiveRequest(ctx, conn);
            if (dynamic) {
                if (startDynamic(ctx, conn))
                    return RunResult::Blocked;
                // No perl process free: degrade to static.
            }
            serveStatic(ctx, conn);
            w_.served_++;
            sh.freeConns.push_back(conn);
        }

        if (sh.pendingConns.empty()) {
            ctx.kernel().cvBlock(ctx, *sh.workCv);
            return RunResult::Blocked;
        }
        return RunResult::Yield;
    }

  private:
    enum class State
    {
        Idle,
        AwaitResponse,
    };

    void
    receiveRequest(SysCtx &ctx, std::uint32_t conn)
    {
        auto &sh = w_.sh_;
        auto &kern = ctx.kernel();
        // Request sizes vary with URI/header lengths.
        const auto bytes = static_cast<std::uint32_t>(
            kRequestBytes / 2 + ctx.rng().below(kRequestBytes));
        // The NIC DMAs the request into this connection's (reused)
        // network buffer; read(2) copies it out to the worker buffer.
        kern.syscalls().readEntry(ctx, sh.serverProc, sh.connFd[conn]);
        ctx.engine().dmaWrite(sh.connNetbuf[conn], bytes);
        kern.copy().copyout(ctx, sh.reqBuf[id_], sh.connNetbuf[conn],
                            bytes);
        // Parse: request line scan plus the vhost/URI tables.
        ctx.userRead(sh.reqBuf[id_], bytes, sh.fnParse);
        ctx.read(sh.vhostTable, 48, sh.fnParse);
        ctx.exec(220);
    }

    void
    serveStatic(SysCtx &ctx, std::uint32_t conn)
    {
        auto &sh = w_.sh_;
        auto &kern = ctx.kernel();
        const auto file =
            static_cast<std::uint32_t>(sh.fileDist->sample(ctx.rng()));
        kern.syscalls().openStat(ctx, sh.serverProc,
                                 file * 2654435761u);
        // SPECweb99-style size classes: most responses are small, a
        // heavy tail spans several pages.
        const double u = ctx.rng().uniform();
        std::uint32_t bytes;
        if (u < 0.35)
            bytes = 512 + static_cast<std::uint32_t>(
                              ctx.rng().below(512));
        else if (u < 0.85)
            bytes = static_cast<std::uint32_t>(
                1024 + ctx.rng().below(7 * 1024));
        else
            bytes = static_cast<std::uint32_t>(
                10 * 1024 + ctx.rng().below(22 * 1024));
        // Stream the file's pages from the shared cache through
        // copyout into the worker's response buffer, sending as we go.
        const std::uint32_t pages = std::min(
            sh.filePages[file],
            static_cast<std::uint32_t>((bytes + kPageSize - 1) /
                                       kPageSize));
        std::uint32_t left = bytes;
        kern.syscalls().writeEntry(ctx, sh.serverProc,
                                   sh.connFd[conn]);
        // Most static responses go out zero-copy (sendfile/mmap
        // style), straight from the file cache; the rest take the
        // legacy read()+write() double-copy path.
        const bool sendfile = ctx.rng().chance(0.6);
        for (std::uint32_t p = 0; p < std::max(1u, pages); ++p) {
            const std::uint32_t chunk = std::min(
                left, static_cast<std::uint32_t>(kPageSize));
            const Addr src =
                sh.fileCache +
                ((sh.fileStart[file] + p) % w_.cfg_.fileCachePages) *
                    kPageSize;
            if (sendfile) {
                kern.ip().send(ctx, sh.connPcb[conn], src, chunk);
            } else {
                kern.copy().copyout(ctx, sh.respBuf[id_], src, chunk);
                kern.ip().send(ctx, sh.connPcb[conn], sh.respBuf[id_],
                               chunk);
            }
            left -= chunk;
        }
        // Access log append (server user space).
        ctx.userWrite(sh.respBuf[id_] + 12 * kBlockSize, 80, sh.fnLog);
    }

    /** @return true if the request was handed to a perl process. */
    bool
    startDynamic(SysCtx &ctx, std::uint32_t conn)
    {
        auto &sh = w_.sh_;
        const auto p = static_cast<std::uint32_t>(
            ctx.rng().below(w_.cfg_.perlProcs));
        pipePut(ctx, *sh.reqPipe[p], sh.reqBuf[id_], kRequestBytes);
        sh.pendingWorker[p].push_back(id_);
        ctx.kernel().cvWake(ctx, *sh.perlCv[p]);
        conn_ = conn;
        proc_ = p;
        state_ = State::AwaitResponse;
        ctx.kernel().cvBlock(ctx, *sh.respCv[id_]);
        return true;
    }

    RunResult
    finishDynamic(SysCtx &ctx)
    {
        auto &sh = w_.sh_;
        const std::uint32_t len =
            pipeDrain(ctx, *sh.respPipe[proc_], sh.respBuf[id_]);
        ctx.kernel().syscalls().writeEntry(ctx, sh.serverProc,
                                           sh.connFd[conn_]);
        ctx.kernel().ip().send(ctx, sh.connPcb[conn_], sh.respBuf[id_],
                               std::max(len, 512u));
        ctx.userWrite(sh.respBuf[id_] + 12 * kBlockSize, 80, sh.fnLog);
        w_.served_++;
        sh.freeConns.push_back(conn_);
        state_ = State::Idle;
        return RunResult::Yield;
    }

    WebWorkload &w_;
    std::uint32_t id_;
    State state_ = State::Idle;
    std::uint32_t conn_ = 0;
    std::uint32_t proc_ = 0;
    std::uint32_t nextProc_ = 0;
};

/** FastCGI perl process: parse, run the script, return the page. */
class WebWorkload::PerlProc : public Task
{
  public:
    PerlProc(WebWorkload &w, std::uint32_t id)
        : w_(w), id_(id)
    {
    }

    RunResult
    run(SysCtx &ctx) override
    {
        auto &sh = w_.sh_;
        if (sh.reqPipe[id_]->empty()) {
            ctx.kernel().cvBlock(ctx, *sh.perlCv[id_]);
            return RunResult::Blocked;
        }

        PerlProcess &perl = *sh.perl[id_];
        const std::uint32_t len =
            pipeDrain(ctx, *sh.reqPipe[id_], perl.inputBuf());
        perl.parseInput(ctx, std::max(len, 64u));

        // Generated page size: 1-6 KB.
        const auto respLen = static_cast<std::uint32_t>(
            768 + ctx.rng().below(3 * 1024));
        perl.executeScript(ctx, respLen);

        pipePut(ctx, *sh.respPipe[id_], perl.outputBuf(), respLen);
        if (!sh.pendingWorker[id_].empty()) {
            const std::uint32_t worker = sh.pendingWorker[id_].front();
            sh.pendingWorker[id_].pop_front();
            ctx.kernel().cvWake(ctx, *sh.respCv[worker]);
        }
        return RunResult::Yield;
    }

  private:
    WebWorkload &w_;
    std::uint32_t id_;
};

void
WebWorkload::setup(Kernel &kern)
{
    auto &heap = kern.kernelHeap();
    auto &reg = kern.engine().registry();
    const bool apache = cfg_.server == WebConfig::Server::Apache;

    sh_.fnParse = reg.intern(apache ? "ap_read_request"
                                    : "zeus_parse_request",
                             Category::WebWorker);
    sh_.fnQueue = reg.intern(apache ? "ap_queue_push" : "zeus_event_pop",
                             Category::WebWorker);
    sh_.fnLog = reg.intern(apache ? "ap_log_transaction"
                                  : "zeus_log_write",
                           Category::WebWorker);

    sh_.serverProc = kern.syscalls().newProc();
    sh_.workCv = std::make_unique<SimCondVar>(kern.makeCondVar());
    sh_.workQueueBlock = seg::userHeap(100);

    // Connections: fd + protocol control block + reused net buffer.
    for (unsigned c = 0; c < cfg_.connections; ++c) {
        sh_.connFd.push_back(kern.syscalls().newFile());
        sh_.connPcb.push_back(kern.ip().newPcb());
        sh_.connNetbuf.push_back(heap.alloc(2048, kBlockSize));
        sh_.freeConns.push_back(c);
    }

    // File cache and the file -> page-range map.
    sh_.fileCache =
        heap.alloc(Addr{cfg_.fileCachePages} * kPageSize, kPageSize);
    sh_.fileDist =
        std::make_unique<ZipfSampler>(cfg_.files, cfg_.fileZipf);
    std::uint32_t start = 0;
    Rng sizes(0xF11E5);
    for (unsigned f = 0; f < cfg_.files; ++f) {
        const auto pages =
            static_cast<std::uint32_t>(1 + sizes.below(4));
        sh_.filePages.push_back(pages);
        sh_.fileStart.push_back(start % cfg_.fileCachePages);
        start += pages;
    }
    sh_.vhostTable = heap.allocBlocks(2);

    // FastCGI perl pool.
    for (unsigned p = 0; p < cfg_.perlProcs; ++p) {
        sh_.reqPipe.push_back(
            std::make_unique<StreamsQueue>(kern.streams(), heap));
        sh_.respPipe.push_back(
            std::make_unique<StreamsQueue>(kern.streams(), heap));
        sh_.perlCv.push_back(
            std::make_unique<SimCondVar>(kern.makeCondVar()));
        sh_.perl.push_back(std::make_unique<PerlProcess>(kern, p + 1));
        sh_.pendingWorker.emplace_back();
    }

    // Worker buffers (per-worker user space).
    for (unsigned wk = 0; wk < cfg_.workers; ++wk) {
        const Addr ub = seg::userHeap(300 + wk);
        sh_.reqBuf.push_back(ub);
        sh_.respBuf.push_back(ub + 4 * kPageSize);
        sh_.respCv.push_back(
            std::make_unique<SimCondVar>(kern.makeCondVar()));
    }

    const unsigned ncpu = kern.engine().numCpus();
    kern.spawn(std::make_unique<Listener>(*this), 0, /*priority=*/70);
    for (unsigned wk = 0; wk < cfg_.workers; ++wk)
        kern.spawn(std::make_unique<Worker>(*this, wk),
                   static_cast<CpuId>(wk % ncpu));
    for (unsigned p = 0; p < cfg_.perlProcs; ++p)
        kern.spawn(std::make_unique<PerlProc>(*this, p),
                   static_cast<CpuId>((p + 1) % ncpu));
}

} // namespace tstream
