#include "sim/mq_workload.hh"

#include <algorithm>

namespace tstream
{

namespace
{
/** Event payload sizes: 256 B floor with a tail to ~1.5 KB. */
std::uint32_t
messageBytes(Rng &rng)
{
    return 256 + static_cast<std::uint32_t>(rng.below(1280));
}
} // namespace

/** poll(2) loop over producer ingest descriptors. */
class MqWorkload::Listener : public Task
{
  public:
    explicit Listener(MqWorkload &w)
        : w_(w)
    {
    }

    RunResult
    run(SysCtx &ctx) override
    {
        auto &sh = w_.sh_;
        std::vector<std::uint32_t> fds;
        const auto start = static_cast<std::uint32_t>(
            ctx.rng().below(sh.prodFd.size()));
        for (unsigned i = 0; i < 12; ++i)
            fds.push_back(sh.prodFd[(start + i) % sh.prodFd.size()]);
        ctx.kernel().syscalls().poll(ctx, sh.brokerProc, fds);
        ctx.exec(180);
        return RunResult::Yield;
    }

  private:
    MqWorkload &w_;
};

/** Producer: receives events from the wire, appends to topic logs. */
class MqWorkload::Producer : public Task
{
  public:
    Producer(MqWorkload &w, std::uint32_t id)
        : w_(w), id_(id)
    {
    }

    RunResult
    run(SysCtx &ctx) override
    {
        auto &sh = w_.sh_;
        auto &kern = ctx.kernel();
        for (unsigned b = 0; b < w_.cfg_.publishBatch; ++b) {
            const std::uint32_t bytes = messageBytes(ctx.rng());
            // Event arrives: DMA into the reused netbuf, read(2)
            // copyout into the producer's user staging buffer.
            kern.syscalls().readEntry(ctx, sh.brokerProc,
                                      sh.prodFd[id_]);
            ctx.engine().dmaWrite(sh.prodNetbuf[id_], bytes);
            kern.copy().copyout(ctx, sh.prodBuf[id_],
                                sh.prodNetbuf[id_], bytes);

            const auto topic = static_cast<std::uint32_t>(
                sh.topicDist->sample(ctx.rng()));
            sh.broker->publish(ctx, topic, bytes, sh.prodBuf[id_]);
            sh.topicDist->noteInsert();
            kern.cvWake(ctx, *sh.topicCv[topic %
                                         sh.topicCv.size()]);
        }
        return RunResult::Yield;
    }

  private:
    MqWorkload &w_;
    std::uint32_t id_;
};

/** Consumer: replays its subscriptions and ships deliveries out. */
class MqWorkload::Consumer : public Task
{
  public:
    Consumer(MqWorkload &w, std::uint32_t id,
             std::vector<std::size_t> cursors,
             std::vector<std::uint32_t> topics)
        : w_(w), id_(id), cursors_(std::move(cursors)),
          topics_(std::move(topics))
    {
    }

    RunResult
    run(SysCtx &ctx) override
    {
        auto &sh = w_.sh_;
        auto &kern = ctx.kernel();

        // Round-robin over subscriptions until one has a backlog.
        for (std::size_t probe = 0; probe < cursors_.size(); ++probe) {
            const std::size_t slot =
                (next_ + probe) % cursors_.size();
            const std::uint32_t n = sh.broker->consume(
                ctx, cursors_[slot], w_.cfg_.consumeBytes);
            if (n == 0)
                continue;
            next_ = (slot + 1) % cursors_.size();
            // Ship the delivery: write(2) + packetization out of the
            // consumer's reused delivery buffer.
            kern.syscalls().writeEntry(ctx, sh.brokerProc,
                                       sh.consFd[id_]);
            kern.ip().send(ctx, sh.consPcb[id_], sh.consBuf[id_], n);
            return RunResult::Yield;
        }
        // Caught up everywhere: sleep until a publish to the first
        // subscription wakes us.
        kern.cvBlock(ctx, *sh.topicCv[topics_.front() %
                                      sh.topicCv.size()]);
        return RunResult::Blocked;
    }

  private:
    MqWorkload &w_;
    std::uint32_t id_;
    std::vector<std::size_t> cursors_;
    std::vector<std::uint32_t> topics_;
    std::size_t next_ = 0;
};

void
MqWorkload::setup(Kernel &kern)
{
    auto &heap = kern.kernelHeap();
    auto &reg = kern.engine().registry();

    sh_.broker = std::make_unique<Broker>(cfg_.broker, reg,
                                          /*pid=*/420);
    broker_ = sh_.broker.get();
    KeyDistSpec topicSpec; // default: the historical zipfian sampler
    topicSpec.theta = cfg_.broker.zipf;
    sh_.topicDist = makeKeyChooser(cfg_.topicDist.value_or(topicSpec),
                                   cfg_.broker.topics);
    sh_.brokerProc = kern.syscalls().newProc();

    for (unsigned t = 0; t < cfg_.broker.topics; ++t)
        sh_.topicCv.push_back(
            std::make_unique<SimCondVar>(kern.makeCondVar()));

    for (unsigned p = 0; p < cfg_.producers; ++p) {
        sh_.prodFd.push_back(kern.syscalls().newFile());
        sh_.prodNetbuf.push_back(heap.alloc(2048, kBlockSize));
        sh_.prodBuf.push_back(seg::userHeap(421) +
                              Addr{p} * 8 * kPageSize);
    }
    for (unsigned c = 0; c < cfg_.consumers; ++c) {
        sh_.consFd.push_back(kern.syscalls().newFile());
        sh_.consPcb.push_back(kern.ip().newPcb());
        sh_.consBuf.push_back(seg::userHeap(422) +
                              Addr{c} * 8 * kPageSize);
    }

    // Subscriptions: consumer c follows a deterministic topic window,
    // so popular topics fan out to several consumers.
    const unsigned ncpu = kern.engine().numCpus();
    std::vector<std::unique_ptr<Consumer>> consumers;
    for (unsigned c = 0; c < cfg_.consumers; ++c) {
        std::vector<std::size_t> cursors;
        std::vector<std::uint32_t> topics;
        for (unsigned s = 0; s < cfg_.subscriptionsPerConsumer; ++s) {
            const std::uint32_t topic =
                (c * 2 + s * 5) % cfg_.broker.topics;
            topics.push_back(topic);
            cursors.push_back(sh_.broker->subscribe(topic));
        }
        consumers.push_back(std::make_unique<Consumer>(
            *this, c, std::move(cursors), std::move(topics)));
    }

    kern.spawn(std::make_unique<Listener>(*this), 0, /*priority=*/70);
    for (unsigned p = 0; p < cfg_.producers; ++p)
        kern.spawn(std::make_unique<Producer>(*this, p),
                   static_cast<CpuId>(p % ncpu));
    for (unsigned c = 0; c < cfg_.consumers; ++c)
        kern.spawn(std::move(consumers[c]),
                   static_cast<CpuId>((c + 1) % ncpu));
}

} // namespace tstream
