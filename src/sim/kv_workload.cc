#include "sim/kv_workload.hh"

#include <algorithm>

namespace tstream
{

namespace
{
/** ASCII-protocol request sizes (GET line / SET line + payload). */
constexpr std::uint32_t kGetRequestBytes = 72;
constexpr std::uint32_t kSetRequestBytes = 480;
} // namespace

/** poll(2) accept loop: admits connections and wakes idle workers. */
class KvWorkload::Listener : public Task
{
  public:
    explicit Listener(KvWorkload &w)
        : w_(w)
    {
    }

    RunResult
    run(SysCtx &ctx) override
    {
        auto &sh = w_.sh_;

        // Mostly parked in poll(2); a fraction of quanta return ready
        // descriptors from effectively random client positions.
        if (ctx.rng().chance(0.5)) {
            ctx.exec(220);
            return RunResult::Yield;
        }
        const unsigned window =
            16 + static_cast<unsigned>(ctx.rng().below(17));
        const auto start = static_cast<std::uint32_t>(
            ctx.rng().below(sh.connFd.size()));
        std::vector<std::uint32_t> fds;
        for (unsigned i = 0; i < window; ++i)
            fds.push_back(sh.connFd[(start + i) % sh.connFd.size()]);
        ctx.kernel().syscalls().poll(ctx, sh.serverProc, fds);

        const unsigned burst =
            2 + static_cast<unsigned>(ctx.rng().below(6));
        for (unsigned i = 0; i < burst && !sh.freeConns.empty(); ++i) {
            const std::size_t pick =
                ctx.rng().below(sh.freeConns.size());
            std::swap(sh.freeConns[pick], sh.freeConns.front());
            sh.pendingConns.push_back(sh.freeConns.front());
            sh.freeConns.pop_front();
            ctx.kernel().cvWake(ctx, *sh.workCv);
        }
        return RunResult::Yield;
    }

  private:
    KvWorkload &w_;
};

/** Cache worker: parses a request, drives the store, responds. */
class KvWorkload::Worker : public Task
{
  public:
    Worker(KvWorkload &w, std::uint32_t id)
        : w_(w), id_(id)
    {
    }

    RunResult
    run(SysCtx &ctx) override
    {
        auto &sh = w_.sh_;
        for (unsigned b = 0; b < w_.cfg_.batch; ++b) {
            if (sh.pendingConns.empty())
                break;
            const std::uint32_t conn = sh.pendingConns.front();
            sh.pendingConns.pop_front();
            serve(ctx, conn);
            w_.served_++;
            sh.freeConns.push_back(conn);
        }
        if (sh.pendingConns.empty()) {
            ctx.kernel().cvBlock(ctx, *sh.workCv);
            return RunResult::Blocked;
        }
        return RunResult::Yield;
    }

  private:
    void
    serve(SysCtx &ctx, std::uint32_t conn)
    {
        auto &sh = w_.sh_;
        auto &kern = ctx.kernel();
        KvStore &store = *sh.store;

        const bool isGet = ctx.rng().chance(w_.cfg_.getFraction);
        const std::uint32_t reqBytes =
            isGet ? kGetRequestBytes : kSetRequestBytes;

        // NIC DMA into the connection's reused buffer, read(2)
        // copyout to the worker buffer, command parse.
        kern.syscalls().readEntry(ctx, sh.serverProc, sh.connFd[conn]);
        ctx.engine().dmaWrite(sh.connNetbuf[conn], reqBytes);
        kern.copy().copyout(ctx, sh.reqBuf[id_], sh.connNetbuf[conn],
                            reqBytes);
        ctx.userRead(sh.reqBuf[id_], std::min(reqBytes, 96u),
                     sh.fnParse);
        ctx.exec(140);

        const auto key = static_cast<std::uint64_t>(
            sh.keyDist->sample(ctx.rng()));
        kern.syscalls().writeEntry(ctx, sh.serverProc,
                                   sh.connFd[conn]);
        if (isGet) {
            const Addr value = store.get(ctx, key);
            if (value != 0) {
                // Hit: the response streams the value from the slab
                // through packetization.
                kern.ip().send(ctx, sh.connPcb[conn], value,
                               store.valueBlocks(key) * kBlockSize);
                return;
            }
            // Miss: fill (cache-aside), then ack.
            store.set(ctx, key, store.valueBlocks(key));
            sh.keyDist->noteInsert();
            kern.ip().send(ctx, sh.connPcb[conn], sh.respBuf[id_], 64);
            return;
        }
        if (ctx.rng().chance(w_.cfg_.deleteFraction /
                             std::max(1e-9, 1.0 - w_.cfg_.getFraction))) {
            store.del(ctx, key);
        } else {
            store.set(ctx, key, store.valueBlocks(key));
            sh.keyDist->noteInsert();
        }
        kern.ip().send(ctx, sh.connPcb[conn], sh.respBuf[id_], 64);
    }

    KvWorkload &w_;
    std::uint32_t id_;
};

void
KvWorkload::setup(Kernel &kern)
{
    auto &heap = kern.kernelHeap();
    auto &reg = kern.engine().registry();

    sh_.store = std::make_unique<KvStore>(cfg_.store, reg,
                                          /*pid=*/400);
    store_ = sh_.store.get();
    sh_.fnParse =
        reg.intern("mc_try_read_command", Category::KvHashIndex);
    sh_.serverProc = kern.syscalls().newProc();
    sh_.workCv = std::make_unique<SimCondVar>(kern.makeCondVar());
    KeyDistSpec keySpec; // default: the historical zipfian sampler
    keySpec.theta = cfg_.store.zipf;
    sh_.keyDist =
        makeKeyChooser(cfg_.keyDist.value_or(keySpec),
                       static_cast<std::size_t>(cfg_.store.keys));

    for (unsigned c = 0; c < cfg_.connections; ++c) {
        sh_.connFd.push_back(kern.syscalls().newFile());
        sh_.connPcb.push_back(kern.ip().newPcb());
        sh_.connNetbuf.push_back(heap.alloc(2048, kBlockSize));
        sh_.freeConns.push_back(c);
    }

    // Worker request/response buffers in per-worker user space (the
    // server is one process; buffers are spaced a page apart).
    for (unsigned wk = 0; wk < cfg_.workers; ++wk) {
        const Addr ub = seg::userHeap(401) + Addr{wk} * 8 * kPageSize;
        sh_.reqBuf.push_back(ub);
        sh_.respBuf.push_back(ub + 4 * kPageSize);
    }

    const unsigned ncpu = kern.engine().numCpus();
    kern.spawn(std::make_unique<Listener>(*this), 0, /*priority=*/70);
    for (unsigned wk = 0; wk < cfg_.workers; ++wk)
        kern.spawn(std::make_unique<Worker>(*this, wk),
                   static_cast<CpuId>(wk % ncpu));
}

} // namespace tstream
