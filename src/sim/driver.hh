/**
 * @file
 * Sharded/fleet cell-level experiment driver.
 *
 * The paper's results form a (workload x context x budget) grid; this
 * driver enumerates that grid as independent *cells*, executes them on
 * a bounded work-stealing thread pool (util/work_pool.hh) sized by
 * --jobs / TSTREAM_JOBS, and distributes cells across processes two
 * ways:
 *
 *  - **Static sharding** (--shard k/N / TSTREAM_SHARD=k/N): shard k
 *    owns exactly the cells whose grid index is congruent to k mod N,
 *    so the N shards are a disjoint exact cover of the grid for any N
 *    and a merged run equals an unsharded one cell-for-cell.
 *  - **Dynamic claiming** (--claim-session / TSTREAM_CLAIM_SESSION):
 *    heterogeneous workers drain the grid by racing on atomic claim
 *    files (util/claim_file.hh) under
 *    `$TSTREAM_TRACE_CACHE/claims/<session>/<bench>`; a worker that
 *    dies mid-cell leaves a stale claim that another worker reclaims
 *    after the heartbeat TTL, so the sweep completes without
 *    pre-partitioning. `tstream-bench run --fleet` builds on this.
 *
 * Cells additionally run under a per-attempt timeout with bounded
 * retry/backoff (util/retry.hh); a cell that exhausts its attempts
 * becomes a structured *failure result* (cause, attempts, wall time)
 * in the report instead of aborting the sweep. All shards/workers can
 * point at one TSTREAM_TRACE_CACHE directory (cells are keyed on
 * configHash(); stores are temp+rename atomic). Results always come
 * back in deterministic grid order, independent of the job count, so
 * printed tables and --json reports (sim/bench_report.hh) are
 * reproducible.
 *
 * Every figure/table bench binary (bench/) is a thin main() over this
 * driver; docs/BENCHMARKING.md is the operator's guide.
 */

#ifndef TSTREAM_SIM_DRIVER_HH
#define TSTREAM_SIM_DRIVER_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/module_profile.hh"
#include "core/stream_analysis.hh"
#include "sim/experiment.hh"
#include "util/retry.hh"

namespace tstream
{

/** The paper's three analysis contexts (trace kinds). */
enum class TraceKind
{
    MultiChip,  ///< off-chip trace of the 16-node DSM
    SingleChip, ///< off-chip trace of the 4-core CMP
    IntraChip,  ///< on-chip-satisfied L1 misses of the CMP
};

std::string_view traceKindName(TraceKind k);

/** Instruction budgets for one sweep (presets in sim/experiment.hh). */
struct BenchBudgets
{
    std::uint64_t warmup = kPaperBudgets.warmupInstructions;
    std::uint64_t measure = kPaperBudgets.measureInstructions;
    double scale = kPaperBudgets.scale;
};

/** Deterministic k-of-N shard assignment. */
struct ShardSpec
{
    unsigned index = 0;
    unsigned count = 1;

    bool
    owns(std::size_t cellIndex) const
    {
        return count <= 1 || cellIndex % count == index;
    }
};

/** Parse "k/N" (k < N, N >= 1) into @p out. */
bool parseShardSpec(std::string_view text, ShardSpec &out);

/**
 * One independent unit of work: a fully specified experiment plus its
 * position in the enumeration (the sharding key) and a stable
 * human-readable id.
 */
struct Cell
{
    std::size_t index = 0;
    std::string id; ///< e.g. "oltp/single-chip"
    ExperimentConfig cfg;
};

/**
 * The standard bench grid: for each workload, one multi-chip cell then
 * one single-chip cell (a single-chip cell yields both the off-chip
 * and the intra-chip trace from one simulation). Enumeration order is
 * deterministic: workload-major in the order given.
 */
std::vector<Cell> standardGrid(const std::vector<WorkloadKind> &workloads,
                               const BenchBudgets &budgets);

/** The cells of @p grid owned by @p shard, in grid order. */
std::vector<Cell> shardCells(const std::vector<Cell> &grid,
                             const ShardSpec &shard);

/** One analyzed trace out of a cell. */
struct RunOutput
{
    WorkloadKind workload;
    TraceKind kind;
    MissTrace trace;
    StreamStats streams;
    ModuleProfile modules;
};

/** One executed cell: its traces, analyses and run diagnostics. */
struct CellResult
{
    Cell cell;
    /** MultiChip cell: {multi}. SingleChip cell: {single, intra}. */
    std::vector<RunOutput> runs;
    double wallSeconds = 0.0;          ///< execute + analyze wall time
    std::uint64_t instructions = 0;    ///< simulated instructions
    bool cacheHit = false;             ///< served from TSTREAM_TRACE_CACHE
    /**
     * Attempts exhausted (timeouts and/or exceptions): runs is empty
     * and the cell becomes a structured failure row in the report
     * instead of aborting the sweep.
     */
    bool failed = false;
    std::string failureCause; ///< last failure, e.g. "timeout after 500ms"
    unsigned attempts = 1;    ///< attempts consumed (1 = first try)
};

/** Dynamic work claiming across cooperating worker processes. */
struct ClaimOptions
{
    /** Sweep id; all workers draining one grid share it. Empty =
     *  static sharding (the default). */
    std::string session;
    /** Claim directory. Empty = derived by BenchOptions::driver() as
     *  `$TSTREAM_TRACE_CACHE/claims/<session>/<bench>`. */
    std::string dir;
    std::int64_t ttlMs = 30'000; ///< stale-claim steal threshold
    /** Heartbeat period; 0 = ttlMs / 3. */
    std::int64_t heartbeatMs = 0;
    std::string owner; ///< "" = ClaimDir::defaultOwner()

    bool
    enabled() const
    {
        return !session.empty();
    }
};

/** Execution options for runCells(). */
struct DriverOptions
{
    unsigned jobs = 0; ///< 0 = TSTREAM_JOBS or hardware concurrency
    ShardSpec shard;
    bool analyzeStreams = true; ///< run SEQUITUR + module attribution
    bool filterIntra = true;    ///< restrict intra trace to on-chip hits
    /** When claim.enabled(), shard is ignored: workers race on claim
     *  files instead of owning a static residue class. */
    ClaimOptions claim;
    /** Per-attempt timeout / bounded retry for every cell. The default
     *  (timeoutMs = 0) never times out and never retries in practice
     *  because a cell only "fails" on exception or timeout. */
    RetryPolicy retry;
    /**
     * Test seam: invoked at the start of every attempt with the cell
     * and the 1-based attempt ordinal, before simulation. A throwing
     * hook makes the attempt fail with "exception: <what>" — used by
     * the fault-injection tests to exercise retry and failure rows
     * deterministically.
     */
    std::function<void(const Cell &, unsigned attempt)> testCellHook;
};

/**
 * Execute the cells of @p grid owned by opts.shard on a bounded
 * work-stealing pool of opts.jobs threads — or, when
 * opts.claim.enabled(), the subset of @p grid this worker wins by
 * racing on the claim directory (dying workers' cells are reclaimed
 * after the heartbeat TTL, so cooperating workers always drain the
 * whole grid between them). Results are returned in grid order
 * regardless of completion order; under claiming only the cells this
 * worker executed are returned (merge the per-worker reports to get
 * the full grid). Cells are served from the trace cache when
 * TSTREAM_TRACE_CACHE is set and the cell was recorded before (by any
 * shard, worker or bench).
 *
 * Fault injection: TSTREAM_CLAIM_DIE_AFTER=N makes the process
 * raise(SIGKILL) immediately after winning its N-th claim, before
 * running the cell — the deterministic "worker dies mid-cell" used by
 * the fleet tests and the CI smoke job.
 */
std::vector<CellResult> runCells(const std::vector<Cell> &grid,
                                 const DriverOptions &opts);

// ---- bench command line -----------------------------------------------------

/** Options shared by every figure/table bench binary. */
struct BenchOptions
{
    std::string benchName; ///< binary name (set by parseBenchArgs)
    BenchBudgets budgets;
    bool quick = false;
    unsigned jobs = 0;
    ShardSpec shard;
    std::string jsonPath; ///< empty = no JSON report
    /**
     * --resume: reuse the cells already present in the existing
     * --json report instead of re-running them; fail if the report's
     * schema version or any cell's config hash mismatches.
     */
    bool resume = false;
    /**
     * --workload FILE: a workload config file
     * (gen/workload_config.hh). benchGrid() restricts the sweep to
     * the configured workload and runs it under the file's phase
     * schedule / key distributions.
     */
    std::string workloadFile;
    /**
     * --phases SPEC: inline phase records (parsePhasesSpec) applied
     * to the PhasedMix workload; benchGrid() restricts the sweep to
     * PhasedMix. Mutually exclusive with --workload.
     */
    std::string phasesSpec;
    /**
     * --claim-session ID: drain the grid by dynamic claiming instead
     * of static sharding (requires TSTREAM_TRACE_CACHE for the shared
     * claim directory; mutually exclusive with --shard and --resume).
     */
    std::string claimSession;
    std::int64_t claimTtlMs = 30'000; ///< --claim-ttl MS
    std::int64_t heartbeatMs = 0;     ///< --heartbeat MS; 0 = ttl/3
    std::int64_t cellTimeoutMs = 0;   ///< --cell-timeout MS; 0 = none
    unsigned cellRetries = 3;         ///< --cell-retries N (attempts)
    /**
     * --telemetry-out PATH: record run telemetry (obs/telemetry.hh)
     * and write the metrics JSON to PATH — plus the Chrome
     * trace-event timeline next to it — at process exit. Also:
     * TSTREAM_TELEMETRY=PATH. parseBenchArgs() enables telemetry as a
     * side effect; recording never perturbs results.
     */
    std::string telemetryOut;

    /** The claim directory for this bench's sweep, or "" when
     *  claiming is off: `$TSTREAM_TRACE_CACHE/claims/<session>/<bench>`. */
    std::string claimDir() const;

    DriverOptions
    driver(bool analyze_streams = true, bool filter_intra = true) const
    {
        DriverOptions d;
        d.jobs = jobs;
        d.shard = shard;
        d.analyzeStreams = analyze_streams;
        d.filterIntra = filter_intra;
        d.claim.session = claimSession;
        d.claim.dir = claimDir();
        d.claim.ttlMs = claimTtlMs;
        d.claim.heartbeatMs = heartbeatMs;
        d.retry.maxAttempts = cellRetries;
        d.retry.timeoutMs = cellTimeoutMs;
        return d;
    }
};

/**
 * Bench-specific CLI extension for parseBenchArgs(). The shared flag
 * set stays strict: an extension can only *add* flags (consumed by
 * @c handler before the unknown-flag rejection) plus their usage text
 * and cross-flag validation — it cannot loosen the rejection of
 * anything neither side recognizes.
 */
struct BenchExtraArgs
{
    /** Extra usage lines, appended under "options:" (each line
     *  terminated with '\n'). */
    const char *usage = nullptr;

    /**
     * Try to consume @p arg. @p take("--flag") returns the flag's
     * value argument, or prints usage and exits 2 when it is missing.
     * Return true when the flag was consumed.
     */
    std::function<bool(
        std::string_view arg,
        const std::function<const char *(const char *)> &take)>
        handler;

    /**
     * Post-parse validation across shared and extension flags (e.g.
     * "--budget-sweep excludes --resume"); return a non-empty
     * diagnostic to reject with usage and exit 2.
     */
    std::function<std::string(const BenchOptions &opts)> validate;
};

/**
 * Strict bench argument parser: --quick, --jobs N, --shard k/N,
 * --json PATH, --resume, --workload FILE, --phases SPEC,
 * --claim-session ID, --claim-ttl MS, --heartbeat MS,
 * --cell-timeout MS, --cell-retries N, --telemetry-out PATH, --help,
 * plus the TSTREAM_QUICK
 * / TSTREAM_JOBS / TSTREAM_SHARD / TSTREAM_CLAIM_SESSION /
 * TSTREAM_CLAIM_TTL_MS / TSTREAM_HEARTBEAT_MS /
 * TSTREAM_CELL_TIMEOUT_MS / TSTREAM_CELL_RETRIES environment
 * fallbacks. Any unknown flag prints a usage message naming
 * @p benchName and exits with status 2 (a typo like --qiuck must not
 * silently run at paper scale for hours); --help exits 0. --resume
 * requires --json; --workload and --phases are mutually exclusive;
 * --claim-session requires TSTREAM_TRACE_CACHE and excludes --shard
 * and --resume. @p extra (optional) adds bench-specific flags and
 * validation without loosening the unknown-flag rejection.
 */
BenchOptions parseBenchArgs(int argc, char **argv,
                            const char *benchName,
                            const BenchExtraArgs *extra = nullptr);

/**
 * The bench's grid after applying any --workload / --phases override:
 * with neither flag this is standardGrid(@p workloads, opts.budgets);
 * with --workload FILE the sweep is restricted to the file's workload
 * kind (which must be in @p workloads) running the file's schedule;
 * with --phases SPEC it is restricted to PhasedMix under the inline
 * schedule. Config errors and overrides that name a workload outside
 * this bench's sweep print a diagnostic and exit with status 2.
 */
std::vector<Cell> benchGrid(const std::vector<WorkloadKind> &workloads,
                            const BenchOptions &opts);

/**
 * For benches whose grid is fixed (not workload-swept): exit with
 * status 2 if the user passed --workload or --phases, instead of
 * silently ignoring the override.
 */
void benchRejectWorkloadOverrides(const BenchOptions &opts);

// ---- trace cache ------------------------------------------------------------

/**
 * Cache-file path stem for @p cfg, or "" when the cache is disabled.
 * Set TSTREAM_TRACE_CACHE to a directory to enable: each (workload,
 * context, budget) cell is keyed on configHash() and stored as
 * `<stem>.off.tst` (off-chip trace, with the function table so module
 * attribution survives) plus `<stem>.l1.tst` (unfiltered intra-chip
 * trace, single-chip cells only). The directory is created on first
 * store if missing.
 */
std::string traceCacheStem(const ExperimentConfig &cfg);

/**
 * Reload a previously cached run for @p cfg. Returns nullopt when the
 * cache is disabled, the cell is absent, or a file fails to load (the
 * caller then simulates; a stale or corrupt cache is never fatal).
 */
std::optional<ExperimentResult>
traceCacheLoad(const ExperimentConfig &cfg);

/**
 * Save a freshly simulated run for @p cfg, creating the cache
 * directory if needed. Files are written to a temporary name and
 * renamed into place so concurrent processes recording the same cell
 * never observe a half-written trace. No-op when disabled.
 */
void traceCacheStore(const ExperimentConfig &cfg,
                     const ExperimentResult &res);

} // namespace tstream

#endif // TSTREAM_SIM_DRIVER_HH
