/**
 * @file
 * DSS workload: TPC-H-style queries over the DB2-like engine (paper
 * Table 1: Q1 scan-dominated, Q2 join-dominated, Q17 balanced, all
 * with a 450 MB buffer pool — scaled per DESIGN.md).
 *
 * Parallel scan threads consume page batches from a shared work
 * counter; table pages stream through the buffer pool (every fix is a
 * pool miss -> DMA + page-sized copyout: the bulk-copy-dominated,
 * compulsory-heavy profile of the paper's Section 5.3). Q2 adds
 * nested-loop index probes whose working set exceeds L1 but fits L2,
 * producing the paper's intra-chip repetition.
 */

#ifndef TSTREAM_SIM_DSS_WORKLOAD_HH
#define TSTREAM_SIM_DSS_WORKLOAD_HH

#include <memory>

#include "db/btree.hh"
#include "db/bufferpool.hh"
#include "db/interp.hh"
#include "db/table.hh"
#include "sim/workload.hh"

namespace tstream
{

/** Tunables of the DSS workload. */
struct DssConfig
{
    enum class Query
    {
        Q1,
        Q2,
        Q17,
    };

    Query query = Query::Q1;
    unsigned poolFrames = 8192;
    /** Scan fact table (streamed; far exceeds the pool). */
    std::uint64_t lineitemPages = 60000;
    /**
     * Outer join table (Q2 streams it once while probing the inner
     * index; large enough to exceed the pool).
     */
    std::uint64_t partPages = 20000;
    /** Mid-size join target (index working set between L1 and L2). */
    std::uint64_t partsuppPages = 3000;
    /** Pages per work batch. */
    unsigned batchPages = 4;
    /** Fraction of each page's tuples the query actually reads. */
    double tupleFraction = 0.4;

    void
    rescale(double s)
    {
        auto f = [s](std::uint64_t v) {
            return std::max<std::uint64_t>(16,
                                           static_cast<std::uint64_t>(
                                               v * s));
        };
        poolFrames = static_cast<unsigned>(f(poolFrames));
        lineitemPages = f(lineitemPages);
        partPages = f(partPages);
        partsuppPages = f(partsuppPages);
    }
};

/** The DSS application. */
class DssWorkload : public Workload
{
  public:
    explicit DssWorkload(const DssConfig &cfg = {})
        : cfg_(cfg)
    {
    }

    void setup(Kernel &kern) override;

    std::string_view
    name() const override
    {
        switch (cfg_.query) {
          case DssConfig::Query::Q1: return "DSS-Qry1";
          case DssConfig::Query::Q2: return "DSS-Qry2";
          default: return "DSS-Qry17";
        }
    }

    std::uint64_t batchesDone() const { return batches_; }

  private:
    class ScanThread;

    /** Shared query state. */
    struct Shared
    {
        std::unique_ptr<BufferPool> pool;
        std::unique_ptr<HeapTable> lineitem, part, partsupp;
        std::unique_ptr<BTree> partsuppIdx, partIdx;
        std::unique_ptr<PlanInterp> interp;
        std::unique_ptr<SimMutex> workLock;
        std::unique_ptr<SimMutex> aggLock;
        Addr workCounter = 0;
        Addr aggTable = 0; ///< 16 bucket blocks, high contention (Q1)
        Addr catalog = 0;  ///< catalog cache blocks (DbOther)
        std::uint64_t nextPage = 0;
        FnId fnAgg, fnSort, fnCatalog, fnGetMem;
    };

    DssConfig cfg_;
    Shared sh_;
    std::uint64_t batches_ = 0;
};

} // namespace tstream

#endif // TSTREAM_SIM_DSS_WORKLOAD_HH
