/**
 * @file
 * The trace-generation engine: the glue between workload emulators and
 * the memory hierarchy.
 *
 * The engine plays the role FLEXUS plays in the paper: a functional,
 * in-order, stall-free execution model whose only outputs are a memory
 * access stream (fed to a MemorySystem) and an instruction count.
 * Everything is deterministic given the seed.
 */

#ifndef TSTREAM_SIM_ENGINE_HH
#define TSTREAM_SIM_ENGINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/memory_system.hh"
#include "trace/categories.hh"
#include "trace/record.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace tstream
{

/** Executes accesses against the memory system and counts instructions. */
class Engine
{
  public:
    Engine(std::unique_ptr<MemorySystem> sys, std::uint64_t seed)
        : sys_(std::move(sys)), rng_(seed),
          icount_(sys_->numCpus(), 0)
    {
    }

    MemorySystem &memory() { return *sys_; }
    const MemorySystem &memory() const { return *sys_; }
    FunctionRegistry &registry() { return registry_; }
    const FunctionRegistry &registry() const { return registry_; }
    Rng &rng() { return rng_; }

    unsigned numCpus() const { return sys_->numCpus(); }

    /** Account @p instrs committed instructions on @p cpu. */
    void
    exec(CpuId cpu, std::uint32_t instrs)
    {
        icount_[cpu] += instrs;
    }

    /** Issue a data read of @p size bytes at @p addr from @p cpu. */
    void
    read(CpuId cpu, Addr addr, std::uint32_t size, FnId fn)
    {
        sys_->access(Access{addr, size, AccessType::Read, cpu, fn});
        icount_[cpu] += kInstrPerAccess * blocksSpanned(addr, size);
    }

    /** Issue a data write. */
    void
    write(CpuId cpu, Addr addr, std::uint32_t size, FnId fn)
    {
        sys_->access(Access{addr, size, AccessType::Write, cpu, fn});
        icount_[cpu] += kInstrPerAccess * blocksSpanned(addr, size);
    }

    /** Device DMA into memory (no requesting CPU). */
    void
    dmaWrite(Addr addr, std::uint32_t size)
    {
        sys_->access(Access{addr, size, AccessType::DmaWrite, 0, 0});
    }

    /**
     * Cache-bypassing block store (Solaris default_copyout-style).
     * Counted to @p cpu's instructions but allocates nowhere.
     */
    void
    nonAllocWrite(CpuId cpu, Addr addr, std::uint32_t size, FnId fn)
    {
        sys_->access(Access{addr, size, AccessType::NonAllocWrite, cpu,
                            fn});
        icount_[cpu] += kInstrPerAccess * blocksSpanned(addr, size);
    }

    /** Total committed instructions across CPUs. */
    std::uint64_t
    totalInstructions() const
    {
        std::uint64_t t = 0;
        for (auto c : icount_)
            t += c;
        return t;
    }

    /** Enable/disable trace collection (off during warmup). */
    void setTracing(bool on) { sys_->setTracing(on); }

    /** Attach instruction totals to the collected traces. */
    void
    finalizeTraces()
    {
        sys_->offChipTrace().instructions = totalInstructions();
        sys_->intraChipTrace().instructions = totalInstructions();
    }

  private:
    static constexpr std::uint32_t kInstrPerAccess = 4;

    std::unique_ptr<MemorySystem> sys_;
    FunctionRegistry registry_;
    Rng rng_;
    std::vector<std::uint64_t> icount_;
};

} // namespace tstream

#endif // TSTREAM_SIM_ENGINE_HH
