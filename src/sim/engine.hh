/**
 * @file
 * The trace-generation engine: the glue between workload emulators and
 * the memory hierarchy.
 *
 * The engine plays the role FLEXUS plays in the paper: a functional,
 * in-order, stall-free execution model whose only outputs are a memory
 * access stream (fed to a MemorySystem) and an instruction count.
 * Everything is deterministic given the seed.
 *
 * Accesses are not handed to the memory system one by one: the engine
 * buffers them (workloads emit long runs from one CPU — a request
 * parse, a value stream, a log replay) and flushes whole runs through
 * MemorySystem::accessRun(), which block-expands them and dispatches
 * the run with a single virtual call. Buffering is invisible: the
 * access order the cache model sees is exactly the issue order, and
 * every observation point (memory(), setTracing(), finalizeTraces())
 * flushes first, so traces are bit-identical to the unbatched path.
 */

#ifndef TSTREAM_SIM_ENGINE_HH
#define TSTREAM_SIM_ENGINE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "mem/memory_system.hh"
#include "trace/categories.hh"
#include "trace/record.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace tstream
{

/** Executes accesses against the memory system and counts instructions. */
class Engine
{
  public:
    Engine(std::unique_ptr<MemorySystem> sys, std::uint64_t seed)
        : sys_(std::move(sys)), rng_(seed),
          icount_(sys_->numCpus(), 0)
    {
    }

    MemorySystem &
    memory()
    {
        flushAccesses();
        return *sys_;
    }

    const MemorySystem &
    memory() const
    {
        flushAccesses();
        return *sys_;
    }

    FunctionRegistry &registry() { return registry_; }
    const FunctionRegistry &registry() const { return registry_; }
    Rng &rng() { return rng_; }

    unsigned numCpus() const { return sys_->numCpus(); }

    /** Account @p instrs committed instructions on @p cpu. */
    void
    exec(CpuId cpu, std::uint32_t instrs)
    {
        icount_[cpu] += instrs;
    }

    /** Issue a data read of @p size bytes at @p addr from @p cpu. */
    void
    read(CpuId cpu, Addr addr, std::uint32_t size, FnId fn)
    {
        push(Access{addr, size, AccessType::Read, cpu, fn});
        icount_[cpu] += kInstrPerAccess * blocksSpanned(addr, size);
    }

    /** Issue a data write. */
    void
    write(CpuId cpu, Addr addr, std::uint32_t size, FnId fn)
    {
        push(Access{addr, size, AccessType::Write, cpu, fn});
        icount_[cpu] += kInstrPerAccess * blocksSpanned(addr, size);
    }

    /** Device DMA into memory (no requesting CPU). */
    void
    dmaWrite(Addr addr, std::uint32_t size)
    {
        push(Access{addr, size, AccessType::DmaWrite, 0, 0});
    }

    /**
     * Cache-bypassing block store (Solaris default_copyout-style).
     * Counted to @p cpu's instructions but allocates nowhere.
     */
    void
    nonAllocWrite(CpuId cpu, Addr addr, std::uint32_t size, FnId fn)
    {
        push(Access{addr, size, AccessType::NonAllocWrite, cpu, fn});
        icount_[cpu] += kInstrPerAccess * blocksSpanned(addr, size);
    }

    /** Total committed instructions across CPUs. */
    std::uint64_t
    totalInstructions() const
    {
        std::uint64_t t = 0;
        for (auto c : icount_)
            t += c;
        return t;
    }

    /** Enable/disable trace collection (off during warmup). */
    void
    setTracing(bool on)
    {
        flushAccesses();
        sys_->setTracing(on);
    }

    /** Attach instruction totals to the collected traces. */
    void
    finalizeTraces()
    {
        flushAccesses();
        sys_->offChipTrace().instructions = totalInstructions();
        sys_->intraChipTrace().instructions = totalInstructions();
    }

    /**
     * Drain buffered accesses into the memory system. Called
     * automatically at every observation point; explicit calls are
     * only needed before touching the MemorySystem behind memory()'s
     * back (tests holding a downcast pointer).
     */
    void
    flushAccesses() const
    {
        if (npending_ > 0) {
            sys_->accessRun(pending_.data(), npending_);
            npending_ = 0;
        }
    }

  private:
    static constexpr std::uint32_t kInstrPerAccess = 4;
    static constexpr std::size_t kBatch = 64;

    void
    push(const Access &acc)
    {
        if (npending_ == kBatch)
            flushAccesses();
        pending_[npending_++] = acc;
    }

    std::unique_ptr<MemorySystem> sys_;
    FunctionRegistry registry_;
    Rng rng_;
    std::vector<std::uint64_t> icount_;
    // Buffered in issue order; logically part of the memory system's
    // input stream, hence mutable + flush from const observers.
    mutable std::array<Access, kBatch> pending_;
    mutable std::size_t npending_ = 0;
};

} // namespace tstream

#endif // TSTREAM_SIM_ENGINE_HH
