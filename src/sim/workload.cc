#include "sim/workload.hh"

#include <algorithm>
#include <cmath>

#include "sim/dss_workload.hh"
#include "sim/kv_workload.hh"
#include "sim/mq_workload.hh"
#include "sim/oltp_workload.hh"
#include "sim/phased_workload.hh"
#include "sim/web_workload.hh"

namespace tstream
{

std::string_view
workloadName(WorkloadKind k)
{
    switch (k) {
      case WorkloadKind::Apache: return "Apache";
      case WorkloadKind::Zeus: return "Zeus";
      case WorkloadKind::Oltp: return "DB2-OLTP";
      case WorkloadKind::DssQ1: return "DSS-Qry1";
      case WorkloadKind::DssQ2: return "DSS-Qry2";
      case WorkloadKind::DssQ17: return "DSS-Qry17";
      case WorkloadKind::KvStore: return "KVstore";
      case WorkloadKind::Broker: return "Broker";
      case WorkloadKind::PhasedMix: return "PhasedMix";
    }
    return "<invalid>";
}

bool
workloadIsDb(WorkloadKind k)
{
    switch (k) {
      case WorkloadKind::Oltp:
      case WorkloadKind::DssQ1:
      case WorkloadKind::DssQ2:
      case WorkloadKind::DssQ17:
        return true;
      default:
        return false;
    }
}

bool
workloadIsScenario(WorkloadKind k)
{
    switch (k) {
      case WorkloadKind::KvStore:
      case WorkloadKind::Broker:
      case WorkloadKind::PhasedMix:
        return true;
      default:
        return false;
    }
}

std::uint64_t
PhaseSchedule::ordinalAt(std::uint64_t instructions) const
{
    const std::uint64_t cycle = cycleLength();
    if (phases.empty() || cycle == 0)
        return 0;
    const std::uint64_t completed = instructions / cycle;
    std::uint64_t pos = instructions % cycle;
    std::uint64_t idx = 0;
    while (pos >= phases[static_cast<std::size_t>(idx)].duration) {
        pos -= phases[static_cast<std::size_t>(idx)].duration;
        ++idx;
    }
    return completed * phases.size() + idx;
}

PhaseSchedule
PhaseSchedule::standardMix()
{
    // Distribution parameters spell out the PhasedConfig defaults
    // (kv.zipf = 0.95, mq.zipf = 0.8) so the resolved default schedule
    // is self-describing and a config file can reproduce it verbatim.
    PhaseSchedule s;
    s.phases = {
        // cache, read-heavy
        {WorkloadKind::KvStore, 0.90, 1'500'000,
         {KeyDistKind::Zipfian, 0.95}},
        // delivery-heavy
        {WorkloadKind::Broker, 0.75, 1'500'000,
         {KeyDistKind::Zipfian, 0.80}},
        // write/evict churn
        {WorkloadKind::KvStore, 0.50, 1'500'000,
         {KeyDistKind::Zipfian, 0.95}},
        // ingest + trimming
        {WorkloadKind::Broker, 0.25, 1'500'000,
         {KeyDistKind::Zipfian, 0.80}},
    };
    return s;
}

PhaseSchedule
resolvedSchedule(WorkloadKind kind, const PhaseSchedule &phases)
{
    switch (kind) {
      case WorkloadKind::PhasedMix:
        return phases.empty() ? PhaseSchedule::standardMix() : phases;
      case WorkloadKind::KvStore: {
        if (!phases.empty())
            return phases;
        const KvAppConfig app;
        PhaseSchedule s;
        s.phases = {{WorkloadKind::KvStore, app.getFraction, 0,
                     {KeyDistKind::Zipfian, app.store.zipf}}};
        return s;
      }
      case WorkloadKind::Broker: {
        if (!phases.empty())
            return phases;
        const MqAppConfig app;
        PhaseSchedule s;
        s.phases = {{WorkloadKind::Broker,
                     static_cast<double>(app.consumers) /
                         (app.producers + app.consumers),
                     0, {KeyDistKind::Zipfian, app.broker.zipf}}};
        return s;
      }
      default:
        return {};
    }
}

namespace
{

/** The single server phase a KvStore/Broker spec may carry. */
const WorkloadPhase &
singleServerPhase(const WorkloadSpec &spec)
{
    if (spec.phases.phases.size() != 1 ||
        spec.phases.phases[0].kind != spec.kind)
        fatal("makeWorkload: standalone scenario workloads take "
              "exactly one phase of their own kind");
    return spec.phases.phases[0];
}

} // namespace

std::unique_ptr<Workload>
makeWorkload(const WorkloadSpec &spec)
{
    if (!spec.phases.empty() && !workloadIsScenario(spec.kind))
        fatal("makeWorkload: phase schedules apply only to the "
              "scenario workloads (kv/broker/phased-mix)");
    switch (spec.kind) {
      case WorkloadKind::Apache: {
        WebConfig cfg = WebConfig::apache();
        cfg.rescale(spec.scale);
        return std::make_unique<WebWorkload>(cfg);
      }
      case WorkloadKind::Zeus: {
        WebConfig cfg = WebConfig::zeus();
        cfg.rescale(spec.scale);
        return std::make_unique<WebWorkload>(cfg);
      }
      case WorkloadKind::Oltp: {
        OltpConfig cfg;
        cfg.rescale(spec.scale);
        return std::make_unique<OltpWorkload>(cfg);
      }
      case WorkloadKind::DssQ1:
      case WorkloadKind::DssQ2:
      case WorkloadKind::DssQ17: {
        DssConfig cfg;
        cfg.query = spec.kind == WorkloadKind::DssQ1
                        ? DssConfig::Query::Q1
                        : (spec.kind == WorkloadKind::DssQ2
                               ? DssConfig::Query::Q2
                               : DssConfig::Query::Q17);
        cfg.rescale(spec.scale);
        return std::make_unique<DssWorkload>(cfg);
      }
      case WorkloadKind::KvStore: {
        KvAppConfig cfg;
        cfg.rescale(spec.scale);
        if (!spec.phases.empty()) {
            const WorkloadPhase &p = singleServerPhase(spec);
            cfg.getFraction = p.mix;
            cfg.keyDist = p.dist;
        }
        return std::make_unique<KvWorkload>(cfg);
      }
      case WorkloadKind::Broker: {
        MqAppConfig cfg;
        cfg.rescale(spec.scale);
        if (!spec.phases.empty()) {
            const WorkloadPhase &p = singleServerPhase(spec);
            cfg.topicDist = p.dist;
            // The mix is the consumer share of the task pool:
            // repartition the (rescaled) task count, keeping at least
            // one task on each side. The default 24/36 = 2/3 maps
            // back onto the compiled-in split at every scale.
            const unsigned total = cfg.producers + cfg.consumers;
            const unsigned cons = std::min(
                total - 1,
                std::max(1u, static_cast<unsigned>(std::lround(
                                 total * p.mix))));
            cfg.consumers = cons;
            cfg.producers = total - cons;
        }
        return std::make_unique<MqWorkload>(cfg);
      }
      case WorkloadKind::PhasedMix: {
        PhasedConfig cfg;
        cfg.rescale(spec.scale);
        cfg.seed = spec.seed;
        cfg.schedule = resolvedSchedule(spec.kind, spec.phases);
        for (const WorkloadPhase &p : cfg.schedule.phases)
            if ((p.kind != WorkloadKind::KvStore &&
                 p.kind != WorkloadKind::Broker) ||
                p.duration == 0)
                fatal("makeWorkload: PhasedMix phases must target "
                      "kv/broker with a positive duration");
        return std::make_unique<PhasedWorkload>(cfg);
      }
    }
    fatal("makeWorkload: unknown workload kind");
}

std::unique_ptr<Workload>
makeWorkload(WorkloadKind kind, double scale)
{
    WorkloadSpec spec;
    spec.kind = kind;
    spec.scale = scale;
    return makeWorkload(spec);
}

} // namespace tstream
