#include "sim/workload.hh"

#include "sim/dss_workload.hh"
#include "sim/oltp_workload.hh"
#include "sim/web_workload.hh"

namespace tstream
{

std::string_view
workloadName(WorkloadKind k)
{
    switch (k) {
      case WorkloadKind::Apache: return "Apache";
      case WorkloadKind::Zeus: return "Zeus";
      case WorkloadKind::Oltp: return "DB2-OLTP";
      case WorkloadKind::DssQ1: return "DSS-Qry1";
      case WorkloadKind::DssQ2: return "DSS-Qry2";
      case WorkloadKind::DssQ17: return "DSS-Qry17";
    }
    return "<invalid>";
}

bool
workloadIsDb(WorkloadKind k)
{
    switch (k) {
      case WorkloadKind::Oltp:
      case WorkloadKind::DssQ1:
      case WorkloadKind::DssQ2:
      case WorkloadKind::DssQ17:
        return true;
      default:
        return false;
    }
}

std::unique_ptr<Workload>
makeWorkload(WorkloadKind kind, double scale)
{
    switch (kind) {
      case WorkloadKind::Apache: {
        WebConfig cfg = WebConfig::apache();
        cfg.rescale(scale);
        return std::make_unique<WebWorkload>(cfg);
      }
      case WorkloadKind::Zeus: {
        WebConfig cfg = WebConfig::zeus();
        cfg.rescale(scale);
        return std::make_unique<WebWorkload>(cfg);
      }
      case WorkloadKind::Oltp: {
        OltpConfig cfg;
        cfg.rescale(scale);
        return std::make_unique<OltpWorkload>(cfg);
      }
      case WorkloadKind::DssQ1:
      case WorkloadKind::DssQ2:
      case WorkloadKind::DssQ17: {
        DssConfig cfg;
        cfg.query = kind == WorkloadKind::DssQ1
                        ? DssConfig::Query::Q1
                        : (kind == WorkloadKind::DssQ2
                               ? DssConfig::Query::Q2
                               : DssConfig::Query::Q17);
        cfg.rescale(scale);
        return std::make_unique<DssWorkload>(cfg);
      }
    }
    fatal("makeWorkload: unknown workload kind");
}

} // namespace tstream
