#include "sim/workload.hh"

#include "sim/dss_workload.hh"
#include "sim/kv_workload.hh"
#include "sim/mq_workload.hh"
#include "sim/oltp_workload.hh"
#include "sim/phased_workload.hh"
#include "sim/web_workload.hh"

namespace tstream
{

std::string_view
workloadName(WorkloadKind k)
{
    switch (k) {
      case WorkloadKind::Apache: return "Apache";
      case WorkloadKind::Zeus: return "Zeus";
      case WorkloadKind::Oltp: return "DB2-OLTP";
      case WorkloadKind::DssQ1: return "DSS-Qry1";
      case WorkloadKind::DssQ2: return "DSS-Qry2";
      case WorkloadKind::DssQ17: return "DSS-Qry17";
      case WorkloadKind::KvStore: return "KVstore";
      case WorkloadKind::Broker: return "Broker";
      case WorkloadKind::PhasedMix: return "PhasedMix";
    }
    return "<invalid>";
}

bool
workloadIsDb(WorkloadKind k)
{
    switch (k) {
      case WorkloadKind::Oltp:
      case WorkloadKind::DssQ1:
      case WorkloadKind::DssQ2:
      case WorkloadKind::DssQ17:
        return true;
      default:
        return false;
    }
}

bool
workloadIsScenario(WorkloadKind k)
{
    switch (k) {
      case WorkloadKind::KvStore:
      case WorkloadKind::Broker:
      case WorkloadKind::PhasedMix:
        return true;
      default:
        return false;
    }
}

std::uint64_t
PhaseSchedule::ordinalAt(std::uint64_t instructions) const
{
    const std::uint64_t cycle = cycleLength();
    if (phases.empty() || cycle == 0)
        return 0;
    const std::uint64_t completed = instructions / cycle;
    std::uint64_t pos = instructions % cycle;
    std::uint64_t idx = 0;
    while (pos >= phases[static_cast<std::size_t>(idx)].duration) {
        pos -= phases[static_cast<std::size_t>(idx)].duration;
        ++idx;
    }
    return completed * phases.size() + idx;
}

PhaseSchedule
PhaseSchedule::standardMix()
{
    PhaseSchedule s;
    s.phases = {
        {WorkloadKind::KvStore, 0.90, 1'500'000}, // cache, read-heavy
        {WorkloadKind::Broker, 0.75, 1'500'000},  // delivery-heavy
        {WorkloadKind::KvStore, 0.50, 1'500'000}, // write/evict churn
        {WorkloadKind::Broker, 0.25, 1'500'000},  // ingest + trimming
    };
    return s;
}

std::unique_ptr<Workload>
makeWorkload(const WorkloadSpec &spec)
{
    switch (spec.kind) {
      case WorkloadKind::Apache: {
        WebConfig cfg = WebConfig::apache();
        cfg.rescale(spec.scale);
        return std::make_unique<WebWorkload>(cfg);
      }
      case WorkloadKind::Zeus: {
        WebConfig cfg = WebConfig::zeus();
        cfg.rescale(spec.scale);
        return std::make_unique<WebWorkload>(cfg);
      }
      case WorkloadKind::Oltp: {
        OltpConfig cfg;
        cfg.rescale(spec.scale);
        return std::make_unique<OltpWorkload>(cfg);
      }
      case WorkloadKind::DssQ1:
      case WorkloadKind::DssQ2:
      case WorkloadKind::DssQ17: {
        DssConfig cfg;
        cfg.query = spec.kind == WorkloadKind::DssQ1
                        ? DssConfig::Query::Q1
                        : (spec.kind == WorkloadKind::DssQ2
                               ? DssConfig::Query::Q2
                               : DssConfig::Query::Q17);
        cfg.rescale(spec.scale);
        return std::make_unique<DssWorkload>(cfg);
      }
      case WorkloadKind::KvStore: {
        KvAppConfig cfg;
        cfg.rescale(spec.scale);
        return std::make_unique<KvWorkload>(cfg);
      }
      case WorkloadKind::Broker: {
        MqAppConfig cfg;
        cfg.rescale(spec.scale);
        return std::make_unique<MqWorkload>(cfg);
      }
      case WorkloadKind::PhasedMix: {
        PhasedConfig cfg;
        cfg.rescale(spec.scale);
        cfg.seed = spec.seed;
        cfg.schedule = spec.phases.empty() ? PhaseSchedule::standardMix()
                                           : spec.phases;
        return std::make_unique<PhasedWorkload>(cfg);
      }
    }
    fatal("makeWorkload: unknown workload kind");
}

std::unique_ptr<Workload>
makeWorkload(WorkloadKind kind, double scale)
{
    WorkloadSpec spec;
    spec.kind = kind;
    spec.scale = scale;
    return makeWorkload(spec);
}

} // namespace tstream
