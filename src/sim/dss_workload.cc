#include "sim/dss_workload.hh"

namespace tstream
{

/** One parallel agent executing batches of the query plan. */
class DssWorkload::ScanThread : public Task
{
  public:
    ScanThread(DssWorkload &w, unsigned id)
        : w_(w), id_(id)
    {
    }

    RunResult
    run(SysCtx &ctx) override
    {
        auto &sh = w_.sh_;

        // Grab a batch from the shared work counter.
        sh.workLock->acquire(ctx);
        ctx.read(sh.workCounter, 16, sh.fnGetMem);
        const std::uint64_t first = sh.nextPage;
        sh.nextPage += w_.cfg_.batchPages;
        ctx.write(sh.workCounter, 16, sh.fnGetMem);
        sh.workLock->release(ctx);

        // Periodic catalog / memory-pool touches (DB2 - other).
        if (first % 64 == 0) {
            ctx.read(sh.catalog + (first / 64 % 16) * kBlockSize, 32,
                     sh.fnCatalog);
            ctx.exec(60);
        }

        switch (w_.cfg_.query) {
          case DssConfig::Query::Q1:
            runQ1Batch(ctx, first);
            break;
          case DssConfig::Query::Q2:
            runQ2Batch(ctx, first);
            break;
          case DssConfig::Query::Q17:
            runQ17Batch(ctx, first);
            break;
        }
        w_.batches_++;
        return RunResult::Yield;
    }

  private:
    /** Flush locally accumulated aggregates into the shared table. */
    void
    flushAgg(SysCtx &ctx, std::uint64_t group)
    {
        auto &sh = w_.sh_;
        sh.aggLock->acquire(ctx);
        const Addr bucket = sh.aggTable + (group % 16) * kBlockSize;
        ctx.read(bucket, 32, sh.fnAgg);
        ctx.write(bucket, 32, sh.fnAgg);
        sh.aggLock->release(ctx);
        ctx.exec(30);
    }

    void
    runQ1Batch(SysCtx &ctx, std::uint64_t first)
    {
        auto &sh = w_.sh_;
        unsigned sinceFlush = 0;
        sh.interp->execute(ctx, 0, [](SysCtx &, unsigned) {});
        sh.lineitem->scan(
            ctx, first % sh.lineitem->pageCount(), w_.cfg_.batchPages,
            w_.cfg_.tupleFraction,
            [&](SysCtx &c, std::uint64_t rid) {
                if (++sinceFlush >= 8) {
                    sinceFlush = 0;
                    flushAgg(c, rid % 64);
                }
            });
    }

    void
    runQ2Batch(SysCtx &ctx, std::uint64_t first)
    {
        auto &sh = w_.sh_;
        sh.interp->execute(ctx, 1, [](SysCtx &, unsigned) {});
        // Nested-loop join: outer tuples from the resident part
        // table, inner index probes whose working set sits between L1
        // and L2 capacity.
        sh.part->scan(
            ctx, first % sh.part->pageCount(), w_.cfg_.batchPages, 0.5,
            [&](SysCtx &c, std::uint64_t rid) {
                if (c.rng().chance(0.5)) {
                    const auto inner =
                        (rid * 2654435761u) %
                        sh.partsuppIdx->keyCount();
                    sh.partsuppIdx->lookup(c, inner);
                    sh.partsupp->fetch(c, inner);
                    // Private sort-run append.
                    c.userWrite(sortBuf(c), 64, sh.fnSort);
                }
            });
    }

    void
    runQ17Batch(SysCtx &ctx, std::uint64_t first)
    {
        auto &sh = w_.sh_;
        sh.interp->execute(ctx, 2, [](SysCtx &, unsigned) {});
        // Balanced: fact-table scan with index probes on a fraction of
        // tuples, plus aggregation.
        unsigned sinceFlush = 0;
        sh.lineitem->scan(
            ctx, first % sh.lineitem->pageCount(), w_.cfg_.batchPages,
            w_.cfg_.tupleFraction,
            [&](SysCtx &c, std::uint64_t rid) {
                if (c.rng().chance(0.2)) {
                    const auto part =
                        (rid * 0x9e3779b9u) % sh.partIdx->keyCount();
                    sh.partIdx->lookup(c, part);
                }
                if (++sinceFlush >= 12) {
                    sinceFlush = 0;
                    flushAgg(c, rid % 64);
                }
            });
    }

    /** Per-thread private sort buffer (user space). */
    Addr
    sortBuf(SysCtx &ctx)
    {
        (void)ctx;
        return seg::userHeap(200 + id_) + (sortOff_++ % 1024) * 64;
    }

    DssWorkload &w_;
    unsigned id_;
    std::uint64_t sortOff_ = 0;
};

void
DssWorkload::setup(Kernel &kern)
{
    BufferPoolConfig bpcfg;
    bpcfg.frames = cfg_.poolFrames;
    // Table scans stream through fresh staging buffers: DSS bulk
    // copies do not reuse addresses (paper Section 5.3).
    bpcfg.recycleStaging = false;
    sh_.pool = std::make_unique<BufferPool>(kern, bpcfg);

    PageId next = 0;
    auto makeTable = [&](std::uint64_t pages, unsigned per_page,
                         unsigned bytes) {
        auto t = std::make_unique<HeapTable>(kern, *sh_.pool, next,
                                             pages, per_page, bytes);
        next += pages;
        return t;
    };
    sh_.lineitem = makeTable(cfg_.lineitemPages, 28, 140);
    sh_.part = makeTable(cfg_.partPages, 24, 160);
    sh_.partsupp = makeTable(cfg_.partsuppPages, 24, 160);

    sh_.partsuppIdx = std::make_unique<BTree>(kern, *sh_.pool, next);
    sh_.partsuppIdx->build(sh_.partsupp->tupleCount());
    next += sh_.partsuppIdx->pagesUsed();
    sh_.partIdx = std::make_unique<BTree>(kern, *sh_.pool, next);
    sh_.partIdx->build(sh_.part->tupleCount());
    next += sh_.partIdx->pagesUsed();

    InterpConfig icfg;
    icfg.nplans = 4;
    icfg.opsPerPlan = 16;
    sh_.interp = std::make_unique<PlanInterp>(kern, icfg);

    sh_.workLock = std::make_unique<SimMutex>(kern.makeMutex());
    sh_.aggLock = std::make_unique<SimMutex>(kern.makeMutex());
    auto &heap = kern.kernelHeap();
    sh_.workCounter = heap.allocBlocks(1);
    sh_.aggTable = heap.alloc(16 * kBlockSize, kBlockSize);
    sh_.catalog = heap.alloc(16 * kBlockSize, kBlockSize);

    auto &reg = kern.engine().registry();
    sh_.fnAgg = reg.intern("sqlriGroupByUpdate",
                           Category::DbRuntimeInterp);
    sh_.fnSort = reg.intern("sqlsSortInsert", Category::DbOther);
    sh_.fnCatalog = reg.intern("sqlrlCatalogFetch", Category::DbOther);
    sh_.fnGetMem = reg.intern("sqloGetMem", Category::DbOther);

    // One agent per CPU, plus one extra to keep queues non-trivial.
    const unsigned ncpu = kern.engine().numCpus();
    for (unsigned t = 0; t < ncpu + 1; ++t)
        kern.spawn(std::make_unique<ScanThread>(*this, t),
                   static_cast<CpuId>(t % ncpu));
}

} // namespace tstream
