#include "sim/oltp_workload.hh"

namespace tstream
{

namespace
{

/** TPC-C-style transaction types with their approximate mix. */
enum class TxnType
{
    NewOrder,
    Payment,
    OrderStatus,
    Delivery,
    StockLevel,
};

TxnType
pickTxn(Rng &rng)
{
    const double u = rng.uniform();
    if (u < 0.45)
        return TxnType::NewOrder;
    if (u < 0.88)
        return TxnType::Payment;
    if (u < 0.92)
        return TxnType::OrderStatus;
    if (u < 0.96)
        return TxnType::Delivery;
    return TxnType::StockLevel;
}

} // namespace

/** One client session: receive -> execute -> commit -> (think). */
class OltpWorkload::Session : public Task
{
  public:
    Session(OltpWorkload &w, std::uint32_t client)
        : w_(w), client_(client)
    {
    }

    RunResult
    run(SysCtx &ctx) override
    {
        auto &db = w_.db_;
        switch (state_) {
          case State::Begin: {
            db.ipc->receiveRequest(ctx, client_);
            txn_ = db.txns->begin(ctx, client_);
            type_ = pickTxn(ctx.rng());
            state_ = State::Work;
            return RunResult::Yield;
          }
          case State::Work: {
            executeBody(ctx);
            state_ = State::Commit;
            return RunResult::Yield;
          }
          case State::Commit: {
            db.txns->commit(ctx, txn_);
            db.ipc->sendReply(ctx, client_);
            w_.committed_++;
            state_ = State::Begin;
            if (ctx.rng().chance(w_.cfg_.thinkProb)) {
                ctx.kernel().cvBlock(ctx, db.connCv[client_]);
                return RunResult::Blocked;
            }
            return RunResult::Yield;
          }
        }
        return RunResult::Yield;
    }

  private:
    enum class State
    {
        Begin,
        Work,
        Commit,
    };

    /**
     * Pick a record id, mostly within the home warehouse's slice and
     * skewed toward its hot head (TPC-C NURand-style popularity), so
     * the hot working set stays pool-resident as in a tuned system.
     */
    std::uint64_t
    pickRid(SysCtx &ctx, std::uint64_t total)
    {
        const auto &cfg = w_.cfg_;
        const std::uint64_t slice = total / cfg.warehouses;
        const double u = ctx.rng().uniform();
        const double skewed = u * u * u * u; // power-law-ish popularity
        if (slice == 0 || ctx.rng().chance(cfg.remoteTouch)) {
            const std::uint64_t wh = ctx.rng().below(cfg.warehouses);
            const std::uint64_t s = slice ? slice : total;
            return (wh * slice + static_cast<std::uint64_t>(skewed * s)) %
                   total;
        }
        const std::uint64_t wh = client_ % cfg.warehouses;
        return wh * slice + static_cast<std::uint64_t>(skewed * slice);
    }

    void
    executeBody(SysCtx &ctx)
    {
        auto &db = w_.db_;
        const std::uint32_t plan = static_cast<std::uint32_t>(type_) * 8 +
                                   client_ % 8;
        db.txns->touchCursor(ctx, client_, false);

        db.interp->execute(ctx, plan, [&](SysCtx &c, unsigned op) {
            // Row/page lock acquisition in the shared lock list
            // precedes every storage operator (DB2 lock manager).
            const Addr bucket =
                w_.db_.lockList +
                ((client_ * 31 + op * 7) % 256) * kBlockSize;
            c.read(bucket, 32, w_.db_.fnLock);
            c.write(bucket, 16, w_.db_.fnLock);
            switch (type_) {
              case TxnType::NewOrder:
                newOrderOp(c, op);
                break;
              case TxnType::Payment:
                paymentOp(c, op);
                break;
              case TxnType::OrderStatus:
                orderStatusOp(c, op);
                break;
              case TxnType::Delivery:
                deliveryOp(c, op);
                break;
              case TxnType::StockLevel:
                stockLevelOp(c, op);
                break;
            }
        });
    }

    void
    newOrderOp(SysCtx &ctx, unsigned op)
    {
        auto &db = w_.db_;
        switch (op % 6) {
          case 0: { // customer credit check
            const auto rid =
                pickRid(ctx, db.customer->tupleCount());
            db.custIdx->lookup(ctx, rid);
            db.customer->fetch(ctx, rid);
            break;
          }
          case 1:
          case 2: { // order-line item + stock decrement
            const auto item = ctx.rng().below(db.item->tupleCount());
            db.itemIdx->lookup(ctx, item);
            db.item->fetch(ctx, item);
            const auto stock = pickRid(ctx, db.stock->tupleCount());
            db.stockIdx->lookup(ctx, stock);
            db.stock->update(ctx, stock);
            db.txns->logAppend(ctx, 160);
            break;
          }
          case 3: { // order insert
            const auto rid = pickRid(ctx, db.orders->tupleCount());
            db.orderIdx->insert(ctx, rid);
            db.orders->update(ctx, rid);
            db.txns->logAppend(ctx, 220);
            break;
          }
          case 4: { // district next-o-id bump (very hot page)
            db.district->update(
                ctx, client_ % db.district->tupleCount());
            break;
          }
          case 5: // interpreter-only op (expression eval)
            ctx.exec(40);
            break;
        }
    }

    void
    paymentOp(SysCtx &ctx, unsigned op)
    {
        auto &db = w_.db_;
        switch (op % 5) {
          case 0: {
            const auto rid = pickRid(ctx, db.customer->tupleCount());
            db.custIdx->lookup(ctx, rid);
            db.customer->update(ctx, rid);
            db.txns->logAppend(ctx, 120);
            break;
          }
          case 1:
            db.district->update(ctx,
                                client_ % db.district->tupleCount());
            break;
          case 2: {
            const auto rid = pickRid(ctx, db.customer->tupleCount());
            db.custIdx->lookup(ctx, rid);
            db.customer->fetch(ctx, rid);
            break;
          }
          default:
            ctx.exec(35);
            break;
        }
    }

    void
    orderStatusOp(SysCtx &ctx, unsigned op)
    {
        auto &db = w_.db_;
        if (op % 4 == 0) {
            // Order-line range scan along leaf siblings.
            const auto rid = pickRid(ctx, db.orderIdx->keyCount());
            db.orderIdx->rangeScan(
                ctx, rid, 12, [&](SysCtx &c, std::uint64_t r) {
                    if (r % 3 == 0)
                        db.orders->fetch(c, r);
                });
        } else {
            ctx.exec(30);
        }
    }

    void
    deliveryOp(SysCtx &ctx, unsigned op)
    {
        auto &db = w_.db_;
        if (op % 3 == 0) {
            const auto rid = pickRid(ctx, db.orders->tupleCount());
            db.orderIdx->lookup(ctx, rid);
            db.orders->update(ctx, rid);
            db.txns->logAppend(ctx, 140);
        } else {
            ctx.exec(30);
        }
    }

    void
    stockLevelOp(SysCtx &ctx, unsigned op)
    {
        auto &db = w_.db_;
        if (op % 8 == 0) {
            // The long stock-level range scan: the paper's example-one
            // stream along sibling leaves.
            const auto rid = pickRid(ctx, db.stockIdx->keyCount());
            db.stockIdx->rangeScan(
                ctx, rid, 160, [&](SysCtx &c, std::uint64_t r) {
                    if (r % 16 == 0)
                        db.stock->fetch(c, r);
                });
        } else {
            ctx.exec(25);
        }
    }

    OltpWorkload &w_;
    std::uint32_t client_;
    State state_ = State::Begin;
    std::uint32_t txn_ = 0;
    TxnType type_ = TxnType::NewOrder;
};

/** Connection manager: polls descriptors and wakes thinking clients. */
class OltpWorkload::Listener : public Task
{
  public:
    Listener(OltpWorkload &w, ProcDesc proc)
        : w_(w), proc_(proc)
    {
    }

    RunResult
    run(SysCtx &ctx) override
    {
        auto &db = w_.db_;
        std::vector<std::uint32_t> fds;
        for (unsigned i = 0; i < 16; ++i)
            fds.push_back((cursor_ + i) % w_.cfg_.clients);
        ctx.kernel().syscalls().poll(ctx, proc_, fds);
        for (unsigned i = 0; i < 16; ++i) {
            const std::uint32_t c = (cursor_ + i) % w_.cfg_.clients;
            if (!db.connCv[c].empty())
                ctx.kernel().cvWake(ctx, db.connCv[c]);
        }
        cursor_ = (cursor_ + 16) % w_.cfg_.clients;
        return RunResult::Yield;
    }

  private:
    OltpWorkload &w_;
    ProcDesc proc_;
    std::uint32_t cursor_ = 0;
};

void
OltpWorkload::setup(Kernel &kern)
{
    BufferPoolConfig bpcfg;
    bpcfg.frames = cfg_.poolFrames;
    db_.pool = std::make_unique<BufferPool>(kern, bpcfg);

    PageId next = 0;
    auto makeTable = [&](std::uint64_t pages, unsigned per_page,
                         unsigned bytes) {
        auto t = std::make_unique<HeapTable>(kern, *db_.pool, next,
                                             pages, per_page, bytes);
        next += pages;
        return t;
    };
    db_.customer = makeTable(cfg_.customerPages, 16, 240);
    db_.stock = makeTable(cfg_.stockPages, 16, 240);
    db_.orders = makeTable(cfg_.orderPages, 24, 160);
    db_.item = makeTable(cfg_.itemPages, 32, 120);
    db_.district = makeTable(std::max<std::uint64_t>(
                                 4, cfg_.warehouses / 16),
                             16, 200);

    auto makeIndex = [&](HeapTable &t) {
        auto ix = std::make_unique<BTree>(kern, *db_.pool, next);
        ix->build(t.tupleCount());
        next += ix->pagesUsed();
        return ix;
    };
    db_.custIdx = makeIndex(*db_.customer);
    db_.stockIdx = makeIndex(*db_.stock);
    db_.orderIdx = makeIndex(*db_.orders);
    db_.itemIdx = makeIndex(*db_.item);

    db_.txns = std::make_unique<TxnManager>(kern, cfg_.clients);
    db_.interp = std::make_unique<PlanInterp>(kern);
    db_.ipc = std::make_unique<DbIpc>(kern, cfg_.clients);
    db_.lockList = kern.kernelHeap().alloc(256 * kBlockSize, kBlockSize);
    db_.fnLock = kern.engine().registry().intern(
        "sqlplLockRequest", Category::DbOther);
    db_.connCv.reserve(cfg_.clients);
    for (unsigned c = 0; c < cfg_.clients; ++c)
        db_.connCv.push_back(kern.makeCondVar());

    // Client connections get kernel-side file state (vnode/pollhead)
    // so the listener's poll scans touch real per-connection blocks.
    for (unsigned c = 0; c < cfg_.clients; ++c)
        kern.syscalls().newFile();

    const unsigned ncpu = kern.engine().numCpus();
    for (unsigned c = 0; c < cfg_.clients; ++c)
        kern.spawn(std::make_unique<Session>(*this, c),
                   static_cast<CpuId>(c % ncpu));
    // Two connection-manager threads, as busy servers run several.
    for (unsigned l = 0; l < 2; ++l)
        kern.spawn(std::make_unique<Listener>(
                       *this, kern.syscalls().newProc()),
                   static_cast<CpuId>(l % ncpu), /*priority=*/70);
}

} // namespace tstream
