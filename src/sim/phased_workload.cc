#include "sim/phased_workload.hh"

#include <algorithm>

namespace tstream
{

namespace
{

constexpr std::uint32_t kRequestBytes = 120;
constexpr std::size_t kMaxSwitchLog = 4096;

/** splitmix64 finalizer for per-phase seed derivation. */
std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t ordinal, std::uint64_t id)
{
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (ordinal + 1) +
                      0xBF58476D1CE4E5B9ull * (id + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace

/** poll(2) loop keeping kernel-side connection scans in the mix. */
class PhasedWorkload::Listener : public Task
{
  public:
    explicit Listener(PhasedWorkload &w)
        : w_(w)
    {
    }

    RunResult
    run(SysCtx &ctx) override
    {
        auto &sh = w_.sh_;
        std::vector<std::uint32_t> fds;
        const auto start = static_cast<std::uint32_t>(
            ctx.rng().below(sh.connFd.size()));
        for (unsigned i = 0; i < 16; ++i)
            fds.push_back(sh.connFd[(start + i) % sh.connFd.size()]);
        ctx.kernel().syscalls().poll(ctx, sh.serverProc, fds);
        ctx.exec(200);
        return RunResult::Yield;
    }

  private:
    PhasedWorkload &w_;
};

/**
 * Mixed worker: follows the phase schedule, reseeding its private op
 * RNG at every phase edge it observes.
 */
class PhasedWorkload::Worker : public Task
{
  public:
    Worker(PhasedWorkload &w, std::uint32_t id, std::size_t cursor)
        : w_(w), id_(id), cursor_(cursor), rng_(0)
    {
    }

    RunResult
    run(SysCtx &ctx) override
    {
        const PhaseSchedule &sched = w_.cfg_.schedule;
        const std::uint64_t ordinal =
            sched.ordinalAt(ctx.engine().totalInstructions());
        if (!seeded_ || ordinal != ordinal_) {
            // Deterministic per-phase seeding: a phase's op stream is
            // a function of (seed, ordinal, worker), independent of
            // what earlier phases issued.
            rng_ = Rng(mixSeed(w_.cfg_.seed, ordinal, id_));
            ordinal_ = ordinal;
            seeded_ = true;
            if (id_ == 0 && w_.switches_.size() < kMaxSwitchLog)
                w_.switches_.push_back(
                    {ordinal, ctx.engine().totalInstructions()});
        }
        const WorkloadPhase &phase = sched.at(ordinal_);
        KeyChooser &dist = *w_.sh_.phaseDist[static_cast<std::size_t>(
            ordinal_ % sched.phases.size())];
        for (unsigned b = 0; b < 2; ++b) {
            if (phase.kind == WorkloadKind::Broker)
                brokerOp(ctx, phase, dist);
            else
                kvOp(ctx, phase, dist);
        }
        return RunResult::Yield;
    }

  private:
    /** Network ingest shared by both op kinds. */
    void
    receive(SysCtx &ctx, std::uint32_t conn, std::uint32_t bytes)
    {
        auto &sh = w_.sh_;
        auto &kern = ctx.kernel();
        kern.syscalls().readEntry(ctx, sh.serverProc, sh.connFd[conn]);
        ctx.engine().dmaWrite(sh.connNetbuf[conn], bytes);
        kern.copy().copyout(ctx, sh.workerBuf[id_],
                            sh.connNetbuf[conn], bytes);
        ctx.userRead(sh.workerBuf[id_], std::min(bytes, 96u),
                     sh.fnParse);
    }

    void
    kvOp(SysCtx &ctx, const WorkloadPhase &phase, KeyChooser &dist)
    {
        auto &sh = w_.sh_;
        auto &kern = ctx.kernel();
        const auto conn = static_cast<std::uint32_t>(
            rng_.below(sh.connFd.size()));
        receive(ctx, conn, kRequestBytes);

        const auto key =
            static_cast<std::uint64_t>(dist.sample(rng_));
        kern.syscalls().writeEntry(ctx, sh.serverProc,
                                   sh.connFd[conn]);
        if (rng_.chance(phase.mix)) {
            const Addr value = sh.store->get(ctx, key);
            if (value != 0) {
                kern.ip().send(ctx, sh.connPcb[conn], value,
                               sh.store->valueBlocks(key) *
                                   kBlockSize);
            } else {
                sh.store->set(ctx, key, sh.store->valueBlocks(key));
                dist.noteInsert();
                kern.ip().send(ctx, sh.connPcb[conn],
                               sh.workerBuf[id_], 64);
            }
        } else {
            sh.store->set(ctx, key, sh.store->valueBlocks(key));
            dist.noteInsert();
            kern.ip().send(ctx, sh.connPcb[conn], sh.workerBuf[id_],
                           64);
        }
        w_.kvOps_++;
    }

    void
    brokerOp(SysCtx &ctx, const WorkloadPhase &phase, KeyChooser &dist)
    {
        auto &sh = w_.sh_;
        auto &kern = ctx.kernel();
        const auto conn = static_cast<std::uint32_t>(
            rng_.below(sh.connFd.size()));
        const bool consume = rng_.chance(phase.mix) &&
                             sh.broker->backlog(cursor_) > 0;
        if (consume) {
            const std::uint32_t n = sh.broker->consume(
                ctx, cursor_, w_.cfg_.consumeBytes);
            kern.syscalls().writeEntry(ctx, sh.serverProc,
                                       sh.connFd[conn]);
            kern.ip().send(ctx, sh.connPcb[conn], sh.workerBuf[id_],
                           std::max(n, 64u));
        } else {
            const std::uint32_t bytes =
                256 + static_cast<std::uint32_t>(rng_.below(1024));
            receive(ctx, conn, bytes);
            const auto topic = static_cast<std::uint32_t>(
                dist.sample(rng_));
            sh.broker->publish(ctx, topic, bytes, sh.workerBuf[id_]);
            dist.noteInsert();
        }
        w_.mqOps_++;
    }

    PhasedWorkload &w_;
    std::uint32_t id_;
    std::size_t cursor_;
    Rng rng_;
    std::uint64_t ordinal_ = 0;
    bool seeded_ = false;
};

void
PhasedWorkload::setup(Kernel &kern)
{
    auto &heap = kern.kernelHeap();
    auto &reg = kern.engine().registry();

    panicIf(cfg_.schedule.empty(),
            "PhasedWorkload: empty phase schedule");

    sh_.store = std::make_unique<KvStore>(cfg_.kv, reg, /*pid=*/440);
    sh_.broker = std::make_unique<Broker>(cfg_.mq, reg, /*pid=*/441);
    for (const WorkloadPhase &p : cfg_.schedule.phases)
        sh_.phaseDist.push_back(makeKeyChooser(
            p.dist, p.kind == WorkloadKind::Broker
                        ? cfg_.mq.topics
                        : static_cast<std::size_t>(cfg_.kv.keys)));
    sh_.fnParse =
        reg.intern("mix_parse_request", Category::KvHashIndex);
    sh_.serverProc = kern.syscalls().newProc();

    for (unsigned c = 0; c < cfg_.connections; ++c) {
        sh_.connFd.push_back(kern.syscalls().newFile());
        sh_.connPcb.push_back(kern.ip().newPcb());
        sh_.connNetbuf.push_back(heap.alloc(2048, kBlockSize));
    }

    const unsigned ncpu = kern.engine().numCpus();
    kern.spawn(std::make_unique<Listener>(*this), 0, /*priority=*/70);
    for (unsigned wk = 0; wk < cfg_.workers; ++wk) {
        sh_.workerBuf.push_back(seg::userHeap(442) +
                                Addr{wk} * 8 * kPageSize);
        const std::size_t cursor =
            sh_.broker->subscribe(wk % cfg_.mq.topics);
        kern.spawn(std::make_unique<Worker>(*this, wk, cursor),
                   static_cast<CpuId>(wk % ncpu));
    }
}

} // namespace tstream
