/**
 * @file
 * Experiment driver: one call runs a (workload, system context) pair —
 * build the hierarchy, spawn the application, warm up untraced, trace,
 * and hand back the miss traces. All benches, tests and examples go
 * through this entry point.
 */

#ifndef TSTREAM_SIM_EXPERIMENT_HH
#define TSTREAM_SIM_EXPERIMENT_HH

#include <cstdint>
#include <memory>
#include <string>

#include "core/ts_prefetcher.hh"
#include "mem/multichip.hh"
#include "mem/singlechip.hh"
#include "sim/workload.hh"
#include "trace/record.hh"

namespace tstream
{

/** The paper's three system contexts (Section 3). */
enum class SystemContext
{
    MultiChip,  ///< 16-node DSM; off-chip trace
    SingleChip, ///< 4-core CMP; off-chip + intra-chip traces
};

/** Short context name. */
std::string_view contextName(SystemContext c);

/** One experiment = workload x context x budgets. */
struct ExperimentConfig
{
    WorkloadKind workload = WorkloadKind::Oltp;
    SystemContext context = SystemContext::MultiChip;

    /** Untraced warm-up instructions. */
    std::uint64_t warmupInstructions = 12'000'000;
    /** Traced instructions. */
    std::uint64_t measureInstructions = 40'000'000;

    std::uint64_t seed = 42;

    /** Footprint scale (1.0 = DESIGN.md defaults). */
    double scale = 1.0;

    /**
     * Phase schedule for the scenario workloads (rejected for paper
     * workloads). Empty = the compiled-in defaults (see
     * resolvedSchedule() in sim/workload.hh); typically filled from a
     * workload config file (gen/workload_config.hh). Covered by
     * configHash() in resolved form, so cells under different
     * schedules or key distributions never collide in the trace
     * cache.
     */
    PhaseSchedule phases;

    MultiChipConfig multiChip{};
    SingleChipConfig singleChip{};

    /**
     * Prefetcher-in-the-loop (core/prefetch_policy.hh): when enabled,
     * the named policy runs against the off-chip miss stream *during*
     * the simulation and covered misses are dropped from the recorded
     * trace. Off by default — and deliberately excluded from
     * configHash() while disabled, so every pre-existing hash, cached
     * trace and offline result is untouched.
     */
    struct PrefetchLoopConfig
    {
        bool enabled = false;
        /** Registry name: fixed | adaptive | stride | hybrid. */
        std::string policy = "fixed";
        /** History/depth/buffer geometry (bufferBlocks sizes the
         *  chip-edge prefetch buffer). */
        TsPrefetcherConfig ts;
        /** Stride engine degree (stride / hybrid policies). */
        unsigned strideDegree = 2;
    };
    PrefetchLoopConfig prefetchLoop;

    /** Shrink budgets and footprints for fast unit tests. */
    static ExperimentConfig
    quick(WorkloadKind w, SystemContext c)
    {
        ExperimentConfig cfg;
        cfg.workload = w;
        cfg.context = c;
        cfg.warmupInstructions = 800'000;
        cfg.measureInstructions = 2'500'000;
        cfg.scale = 0.1;
        return cfg;
    }
};

/**
 * Canonical instruction budgets, shared by the bench driver
 * (parseBenchArgs in sim/driver.hh) and the tstream-trace CLI so that
 * offline analyses of recorded traces reproduce bench rows exactly —
 * the equivalence holds only while both sides read these constants.
 */
struct BudgetPreset
{
    std::uint64_t warmupInstructions;
    std::uint64_t measureInstructions;
    double scale;
};

/** Paper-scale defaults (calibrated in DESIGN.md). */
inline constexpr BudgetPreset kPaperBudgets{25'000'000, 30'000'000,
                                            1.0};

/** --quick smoke-run budgets. */
inline constexpr BudgetPreset kQuickBudgets{2'000'000, 4'000'000, 0.15};

/** Experiment output: the traces plus run diagnostics. */
struct ExperimentResult
{
    MissTrace offChip;
    MissTrace intraChip; ///< empty for MultiChip context
    FunctionRegistry registry;
    std::uint64_t instructions = 0;

    /** In-the-loop prefetcher diagnostics (prefetchLoop.enabled runs
     *  only): stats over every observed miss, warm-up included. */
    bool prefetchEnabled = false;
    TsPrefetcherStats prefetch;
    /** Covered misses dropped from the off-chip trace (i.e. covered
     *  while tracing was on). */
    std::uint64_t prefetchCoveredTraced = 0;

    /** Intra-chip trace filtered to on-chip-satisfied misses (the
     *  paper's context (3): hits in shared on-chip caches). */
    MissTrace intraChipOnChip() const;
};

/** Run one experiment. */
ExperimentResult runExperiment(const ExperimentConfig &cfg);

/**
 * Deterministic 64-bit hash over every field of @p cfg that affects
 * the collected traces (workload, context, budgets, seed, scale, the
 * active context's cache geometry and — for scenario workloads — the
 * resolved phase schedule with all key-distribution parameters),
 * plus a schema salt. Two configs with equal hashes
 * produce byte-identical traces, so the hash keys the bench trace
 * cache (TSTREAM_TRACE_CACHE) and is stored in v2 trace headers for
 * provenance.
 */
std::uint64_t configHash(const ExperimentConfig &cfg);

} // namespace tstream

#endif // TSTREAM_SIM_EXPERIMENT_HH
