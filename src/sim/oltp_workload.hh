/**
 * @file
 * OLTP workload: a TPC-C-style transaction mix over the DB2-like
 * engine (paper Table 1: 100 warehouses, 64 clients, 450 MB buffer
 * pool — footprints scaled per DESIGN.md while preserving the
 * footprint : L2 : buffer-pool ratios).
 *
 * Each client session is a task cycling through receive-request /
 * execute / commit states; transactions mix index lookups, tuple
 * fetches/updates, range scans (order lines, stock levels), log
 * appends and request-control traffic. Clients have home-warehouse
 * affinity with a remote-touch fraction, giving per-node locality
 * plus genuine cross-node sharing of hot meta-data.
 */

#ifndef TSTREAM_SIM_OLTP_WORKLOAD_HH
#define TSTREAM_SIM_OLTP_WORKLOAD_HH

#include <memory>
#include <vector>

#include "db/btree.hh"
#include "db/bufferpool.hh"
#include "db/interp.hh"
#include "db/ipc.hh"
#include "db/table.hh"
#include "db/txn.hh"
#include "sim/workload.hh"

namespace tstream
{

/** Tunables of the OLTP workload. */
struct OltpConfig
{
    unsigned clients = 64;
    unsigned warehouses = 64;
    /** Buffer-pool frames (scaled: 14336 x 4 KB = 56 MB = 7x L2). */
    unsigned poolFrames = 14336;
    /**
     * Table pages. The hot skewed working set approximately fits the
     * pool (as in a tuned TPC-C deployment), while the aggregate
     * footprint still far exceeds the 8 MB L2, so off-chip behaviour
     * is replacement + coherence rather than disk-I/O bound.
     */
    std::uint64_t customerPages = 4000;
    std::uint64_t stockPages = 5000;
    std::uint64_t orderPages = 3000;
    std::uint64_t itemPages = 800;
    /** Probability a storage access leaves the home warehouse. */
    double remoteTouch = 0.15;
    /** Probability a session sleeps on its connection after commit. */
    double thinkProb = 0.5;

    /** Apply a footprint scale factor. */
    void
    rescale(double s)
    {
        auto f = [s](std::uint64_t v) {
            return std::max<std::uint64_t>(16,
                                           static_cast<std::uint64_t>(
                                               v * s));
        };
        poolFrames = static_cast<unsigned>(f(poolFrames));
        customerPages = f(customerPages);
        stockPages = f(stockPages);
        orderPages = f(orderPages);
        itemPages = f(itemPages);
    }
};

/** The OLTP application. */
class OltpWorkload : public Workload
{
  public:
    explicit OltpWorkload(const OltpConfig &cfg = {})
        : cfg_(cfg)
    {
    }

    void setup(Kernel &kern) override;

    std::string_view name() const override { return "DB2-OLTP"; }

    /** Transactions committed since setup (diagnostics). */
    std::uint64_t committed() const { return committed_; }

    /** Shared database state across sessions. */
    struct Db
    {
        std::unique_ptr<BufferPool> pool;
        std::unique_ptr<HeapTable> customer, stock, orders, item,
            district;
        std::unique_ptr<BTree> custIdx, stockIdx, orderIdx, itemIdx;
        std::unique_ptr<TxnManager> txns;
        std::unique_ptr<PlanInterp> interp;
        std::unique_ptr<DbIpc> ipc;
        std::vector<SimCondVar> connCv;
        /** DB2 lock list: shared hash of row/page lock blocks. */
        Addr lockList = 0;
        FnId fnLock = 0;
    };

  private:
    class Session;
    class Listener;

    OltpConfig cfg_;
    Db db_;
    std::uint64_t committed_ = 0;
};

} // namespace tstream

#endif // TSTREAM_SIM_OLTP_WORKLOAD_HH
