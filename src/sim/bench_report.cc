#include "sim/bench_report.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace tstream
{

namespace
{

std::string
hashToHex(std::uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016" PRIx64, h);
    return buf;
}

bool
hexToHash(const std::string &s, std::uint64_t &out)
{
    if (s.size() != 16)
        return false;
    char *end = nullptr;
    out = std::strtoull(s.c_str(), &end, 16);
    return end && *end == '\0';
}

} // namespace

BenchCell
makeBenchCell(const CellResult &res, std::vector<BenchRow> rows)
{
    BenchCell c;
    c.index = res.cell.index;
    c.id = res.cell.id;
    c.workload = std::string(workloadName(res.cell.cfg.workload));
    c.context = std::string(contextName(res.cell.cfg.context));
    c.configHash = configHash(res.cell.cfg);
    c.cacheHit = res.cacheHit;
    c.wallSeconds = res.wallSeconds;
    c.instructions = res.instructions;
    c.attempts = res.attempts;
    c.failed = res.failed;
    c.failureCause = res.failureCause;
    c.rows = std::move(rows);
    return c;
}

bool
loadResumeCells(const std::string &path, const std::string &benchName,
                bool quick, const BenchBudgets &budgets,
                const std::vector<Cell> &grid,
                std::vector<BenchCell> &out, std::string &err)
{
    out.clear();
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        if (!f)
            return true; // nothing to resume from: fresh run
        std::fclose(f);
    }

    std::vector<BenchDoc> docs;
    if (!readBenchDocs(path, docs, err))
        return false; // unreadable or wrong schema version

    const BenchDoc *doc = nullptr;
    for (const BenchDoc &d : docs)
        if (d.bench == benchName)
            doc = &d;
    if (!doc) {
        err = path + ": no document for bench " + benchName;
        return false;
    }
    if (doc->quick != quick || doc->budgets.warmup != budgets.warmup ||
        doc->budgets.measure != budgets.measure ||
        doc->budgets.scale != budgets.scale) {
        err = path + ": budgets differ from this run (was the report "
                     "recorded with different --quick/budget flags?)";
        return false;
    }
    if (doc->gridCells != grid.size()) {
        err = path + ": grid size " + std::to_string(doc->gridCells) +
              " != current " + std::to_string(grid.size()) +
              " (workload suite changed); delete the report or drop "
              "--resume";
        return false;
    }

    std::vector<bool> seen(grid.size(), false);
    for (const BenchCell &cell : doc->cells) {
        if (cell.index >= grid.size() || seen[cell.index]) {
            err = path + ": duplicate or out-of-range cell index " +
                  std::to_string(cell.index);
            return false;
        }
        const Cell &cur = grid[cell.index];
        if (cell.id != cur.id) {
            err = path + ": cell " + std::to_string(cell.index) +
                  " is " + cell.id + " but the current grid has " +
                  cur.id;
            return false;
        }
        const std::uint64_t want = configHash(cur.cfg);
        if (cell.configHash != want) {
            err = path + ": cell " + cell.id +
                  ": config hash mismatch (report " +
                  hashToHex(cell.configHash) + ", current " +
                  hashToHex(want) +
                  "); budgets/seed/geometry changed — delete the "
                  "report or drop --resume";
            return false;
        }
        seen[cell.index] = true;
        if (cell.failed) {
            // A failure row is not a result to reuse: resume re-runs
            // the cell (that is the whole point of resuming).
            std::fprintf(stderr,
                         "[bench] --resume: re-running failed cell %s "
                         "(%s)\n",
                         cell.id.c_str(), cell.failureCause.c_str());
            continue;
        }
        out.push_back(cell);
    }
    std::sort(out.begin(), out.end(),
              [](const BenchCell &a, const BenchCell &b) {
                  return a.index < b.index;
              });
    return true;
}

json::Value
benchDocToJson(const BenchDoc &doc)
{
    json::Value v = json::Value::object();
    v["schema"] = json::Value(kBenchDocSchema);
    v["bench"] = json::Value(doc.bench);
    v["quick"] = json::Value(doc.quick);

    json::Value budgets = json::Value::object();
    budgets["warmup"] = json::Value(doc.budgets.warmup);
    budgets["measure"] = json::Value(doc.budgets.measure);
    budgets["scale"] = json::Value(doc.budgets.scale);
    v["budgets"] = std::move(budgets);

    v["grid_cells"] = json::Value(
        static_cast<std::uint64_t>(doc.gridCells));

    json::Value shard = json::Value::object();
    shard["index"] = json::Value(doc.shard.index);
    shard["count"] = json::Value(doc.shard.count);
    v["shard"] = std::move(shard);
    v["jobs"] = json::Value(doc.jobs);

    json::Value cells = json::Value::array();
    for (const BenchCell &c : doc.cells) {
        json::Value jc = json::Value::object();
        jc["index"] = json::Value(static_cast<std::uint64_t>(c.index));
        jc["id"] = json::Value(c.id);
        jc["workload"] = json::Value(c.workload);
        jc["context"] = json::Value(c.context);
        jc["config_hash"] = json::Value(hashToHex(c.configHash));
        jc["cache_hit"] = json::Value(c.cacheHit);
        jc["wall_seconds"] = json::Value(c.wallSeconds);
        jc["instructions"] = json::Value(c.instructions);
        jc["attempts"] = json::Value(c.attempts);
        if (c.failed) {
            json::Value failed = json::Value::object();
            failed["cause"] = json::Value(c.failureCause);
            jc["failed"] = std::move(failed);
        }

        json::Value rows = json::Value::array();
        for (const BenchRow &r : c.rows) {
            json::Value jr = json::Value::object();
            jr["table"] = json::Value(r.table);
            jr["trace"] = json::Value(r.trace);
            if (!r.label.empty())
                jr["label"] = json::Value(r.label);
            if (!r.policy.empty())
                jr["policy"] = json::Value(r.policy);
            jr["text"] = json::Value(r.text);
            json::Value metrics = json::Value::object();
            for (const auto &[name, value] : r.metrics)
                metrics[name] = json::Value(value);
            jr["metrics"] = std::move(metrics);
            rows.push(std::move(jr));
        }
        jc["rows"] = std::move(rows);
        cells.push(std::move(jc));
    }
    v["cells"] = std::move(cells);
    return v;
}

namespace
{

const json::Value *
need(const json::Value &v, const char *key, std::string &err)
{
    const json::Value *f = v.find(key);
    if (!f)
        err = std::string("missing field: ") + key;
    return f;
}

} // namespace

bool
benchDocFromJson(const json::Value &v, BenchDoc &out, std::string &err)
{
    if (!v.isObject()) {
        err = "bench document is not an object";
        return false;
    }
    const json::Value *schema = need(v, "schema", err);
    if (!schema)
        return false;
    if (schema->asString() != kBenchDocSchema) {
        err = "unsupported schema: " + schema->asString();
        return false;
    }

    const json::Value *bench = need(v, "bench", err);
    const json::Value *budgets = need(v, "budgets", err);
    const json::Value *grid = need(v, "grid_cells", err);
    const json::Value *cells = need(v, "cells", err);
    if (!bench || !budgets || !grid || !cells)
        return false;
    if (!budgets->isObject() || !cells->isArray()) {
        err = "malformed budgets/cells";
        return false;
    }

    out = BenchDoc{};
    out.bench = bench->asString();
    if (const json::Value *q = v.find("quick"))
        out.quick = q->asBool();
    const json::Value *warm = need(*budgets, "warmup", err);
    const json::Value *meas = need(*budgets, "measure", err);
    const json::Value *scale = need(*budgets, "scale", err);
    if (!warm || !meas || !scale)
        return false;
    out.budgets.warmup = warm->asUint();
    out.budgets.measure = meas->asUint();
    out.budgets.scale = scale->asDouble();
    out.gridCells = static_cast<std::size_t>(grid->asUint());
    if (const json::Value *shard = v.find("shard")) {
        if (const json::Value *i = shard->find("index"))
            out.shard.index = static_cast<unsigned>(i->asUint());
        if (const json::Value *n = shard->find("count"))
            out.shard.count = static_cast<unsigned>(n->asUint());
    }
    if (const json::Value *jobs = v.find("jobs"))
        out.jobs = static_cast<unsigned>(jobs->asUint());

    for (const json::Value &jc : cells->items()) {
        BenchCell c;
        const json::Value *index = need(jc, "index", err);
        const json::Value *id = need(jc, "id", err);
        const json::Value *hash = need(jc, "config_hash", err);
        const json::Value *rows = need(jc, "rows", err);
        if (!index || !id || !hash || !rows)
            return false;
        c.index = static_cast<std::size_t>(index->asUint());
        c.id = id->asString();
        if (const json::Value *w = jc.find("workload"))
            c.workload = w->asString();
        if (const json::Value *ctx = jc.find("context"))
            c.context = ctx->asString();
        if (!hexToHash(hash->asString(), c.configHash)) {
            err = "cell " + c.id + ": bad config_hash";
            return false;
        }
        if (const json::Value *f = jc.find("cache_hit"))
            c.cacheHit = f->asBool();
        if (const json::Value *f = jc.find("wall_seconds"))
            c.wallSeconds = f->asDouble();
        if (const json::Value *f = jc.find("instructions"))
            c.instructions = f->asUint();
        if (const json::Value *f = jc.find("attempts"))
            c.attempts = static_cast<unsigned>(f->asUint());
        if (const json::Value *f = jc.find("failed")) {
            c.failed = true;
            if (const json::Value *cause = f->find("cause"))
                c.failureCause = cause->asString();
        }
        if (!rows->isArray()) {
            err = "cell " + c.id + ": rows is not an array";
            return false;
        }
        for (const json::Value &jr : rows->items()) {
            BenchRow r;
            if (const json::Value *f = jr.find("table"))
                r.table = f->asString();
            if (const json::Value *f = jr.find("trace"))
                r.trace = f->asString();
            if (const json::Value *f = jr.find("label"))
                r.label = f->asString();
            if (const json::Value *f = jr.find("policy"))
                r.policy = f->asString();
            const json::Value *text = need(jr, "text", err);
            if (!text)
                return false;
            r.text = text->asString();
            if (const json::Value *metrics = jr.find("metrics"))
                for (const auto &[name, value] : metrics->members())
                    r.metrics.emplace_back(name, value.asDouble());
            c.rows.push_back(std::move(r));
        }
        out.cells.push_back(std::move(c));
    }
    return true;
}

bool
writeBenchDoc(const BenchDoc &doc, const std::string &path,
              std::string &err)
{
    return json::writeFile(benchDocToJson(doc), path, err);
}

json::Value
queryDocToJson(const QueryDoc &doc)
{
    json::Value v = json::Value::object();
    v["schema"] = json::Value(kQueryDocSchema);
    v["source"] = json::Value(doc.source);
    if (!doc.member.empty())
        v["member"] = json::Value(doc.member);
    v["kind"] = json::Value(traceContentKindName(doc.kind));
    v["config_hash"] = json::Value(hashToHex(doc.configHash));

    // Echo the resolved filters so a stored document says exactly
    // what it answered (only the filters that were set).
    const QuerySpec &s = doc.spec;
    json::Value filters = json::Value::object();
    if (s.cpu)
        filters["cpu"] = json::Value(*s.cpu);
    if (!s.cls.empty())
        filters["class"] = json::Value(s.cls);
    if (!s.module.empty())
        filters["module"] = json::Value(s.module);
    if (!s.category.empty())
        filters["category"] = json::Value(s.category);
    if (s.blockLo)
        filters["block_lo"] = json::Value(*s.blockLo);
    if (s.blockHi)
        filters["block_hi"] = json::Value(*s.blockHi);
    if (s.seqLo)
        filters["window_lo"] = json::Value(*s.seqLo);
    if (s.seqHi)
        filters["window_hi"] = json::Value(*s.seqHi);
    v["filters"] = std::move(filters);

    json::Value aggs = json::Value::array();
    for (const std::string &a : s.aggregates)
        aggs.push(json::Value(a));
    v["aggregates"] = std::move(aggs);
    v["intervals"] = json::Value(s.intervals);
    v["limit"] = json::Value(s.limit);

    const QueryOutput &o = doc.output;
    v["matched"] = json::Value(o.matched);
    v["records_scanned"] = json::Value(o.scanned);
    v["chunks_decoded"] = json::Value(o.chunksDecoded);
    v["chunks_total"] = json::Value(o.chunksTotal);

    // Same row shape as a bench cell's rows, so the two documents
    // compare metric-for-metric through the same serializer.
    json::Value rows = json::Value::array();
    for (const QueryRow &r : o.rows) {
        json::Value jr = json::Value::object();
        jr["table"] = json::Value(r.table);
        jr["trace"] = json::Value(r.trace);
        if (!r.label.empty())
            jr["label"] = json::Value(r.label);
        jr["text"] = json::Value(r.text);
        json::Value metrics = json::Value::object();
        for (const auto &[name, value] : r.metrics)
            metrics[name] = json::Value(value);
        jr["metrics"] = std::move(metrics);
        rows.push(std::move(jr));
    }
    v["rows"] = std::move(rows);
    return v;
}

bool
writeQueryDoc(const QueryDoc &doc, const std::string &path,
              std::string &err)
{
    return json::writeFile(queryDocToJson(doc), path, err);
}

json::Value
combinedReportToJson(const std::vector<BenchDoc> &docs)
{
    json::Value v = json::Value::object();
    v["schema"] = json::Value(kBenchReportSchema);
    json::Value benches = json::Value::array();
    for (const BenchDoc &doc : docs)
        benches.push(benchDocToJson(doc));
    v["benches"] = std::move(benches);
    return v;
}

bool
readBenchDocs(const std::string &path, std::vector<BenchDoc> &out,
              std::string &err)
{
    json::Value v;
    if (!json::parseFile(path, v, err))
        return false;
    const json::Value *schema = v.find("schema");
    if (!schema) {
        err = path + ": not a bench report (no schema field)";
        return false;
    }
    if (schema->asString() == kBenchDocSchema) {
        BenchDoc doc;
        if (!benchDocFromJson(v, doc, err)) {
            err = path + ": " + err;
            return false;
        }
        out.push_back(std::move(doc));
        return true;
    }
    if (schema->asString() == kBenchReportSchema) {
        const json::Value *benches = v.find("benches");
        if (!benches || !benches->isArray()) {
            err = path + ": combined report without benches array";
            return false;
        }
        for (const json::Value &jb : benches->items()) {
            BenchDoc doc;
            if (!benchDocFromJson(jb, doc, err)) {
                err = path + ": " + err;
                return false;
            }
            out.push_back(std::move(doc));
        }
        return true;
    }
    err = path + ": unsupported schema " + schema->asString();
    return false;
}

namespace
{

bool
rowsEqual(const BenchRow &a, const BenchRow &b, std::string &why)
{
    if (a.table != b.table || a.trace != b.trace ||
        a.label != b.label || a.policy != b.policy) {
        why = "row keys differ (" + a.table + "/" + a.trace + " vs " +
              b.table + "/" + b.trace + ")";
        return false;
    }
    if (a.text != b.text) {
        why = "row text differs:\n  a: " + a.text + "\n  b: " + b.text;
        return false;
    }
    if (a.metrics.size() != b.metrics.size()) {
        why = "row metric counts differ for " + a.table + "/" + a.trace;
        return false;
    }
    for (std::size_t i = 0; i < a.metrics.size(); ++i) {
        if (a.metrics[i].first != b.metrics[i].first ||
            a.metrics[i].second != b.metrics[i].second) {
            char buf[64];
            std::snprintf(buf, sizeof buf, " (%.17g vs %.17g)",
                          a.metrics[i].second, b.metrics[i].second);
            why = "metric " + a.metrics[i].first + " differs in row " +
                  a.table + "/" + a.trace + buf;
            return false;
        }
    }
    return true;
}

bool
cellsEqual(const BenchCell &a, const BenchCell &b, std::string &why)
{
    if (a.index != b.index || a.id != b.id ||
        a.workload != b.workload || a.context != b.context) {
        why = "cell identity differs (" + a.id + " vs " + b.id + ")";
        return false;
    }
    if (a.configHash != b.configHash) {
        why = "cell " + a.id + ": config hashes differ (" +
              hashToHex(a.configHash) + " vs " +
              hashToHex(b.configHash) + ")";
        return false;
    }
    if (a.failed != b.failed) {
        const BenchCell &f = a.failed ? a : b;
        why = "cell " + a.id + " (index " + std::to_string(a.index) +
              ") failed in the " + (a.failed ? "first" : "second") +
              " report (cause=" + f.failureCause + ", attempts=" +
              std::to_string(f.attempts) +
              ") but succeeded in the other";
        return false;
    }
    // Both failed: causes may legitimately differ between workers, so
    // only the identity above is compared.
    if (a.instructions != b.instructions) {
        why = "cell " + a.id + ": simulated instructions differ";
        return false;
    }
    if (a.rows.size() != b.rows.size()) {
        why = "cell " + a.id + ": row counts differ";
        return false;
    }
    for (std::size_t i = 0; i < a.rows.size(); ++i)
        if (!rowsEqual(a.rows[i], b.rows[i], why)) {
            why = "cell " + a.id + " row " + std::to_string(i) + ": " +
                  why;
            return false;
        }
    return true;
}

bool
headersCompatible(const BenchDoc &a, const BenchDoc &b,
                  std::string &why)
{
    if (a.bench != b.bench) {
        why = "bench names differ (" + a.bench + " vs " + b.bench + ")";
        return false;
    }
    if (a.quick != b.quick || a.budgets.warmup != b.budgets.warmup ||
        a.budgets.measure != b.budgets.measure ||
        a.budgets.scale != b.budgets.scale) {
        why = "budgets differ for bench " + a.bench;
        return false;
    }
    if (a.gridCells != b.gridCells) {
        why = "grid sizes differ for bench " + a.bench;
        return false;
    }
    return true;
}

} // namespace

bool
mergeBenchDocs(const std::vector<BenchDoc> &docs, BenchDoc &out,
               std::string &err)
{
    if (docs.empty()) {
        err = "nothing to merge";
        return false;
    }
    out = BenchDoc{};
    out.bench = docs[0].bench;
    out.quick = docs[0].quick;
    out.budgets = docs[0].budgets;
    out.gridCells = docs[0].gridCells;
    out.shard = ShardSpec{0, 1};
    for (const BenchDoc &doc : docs) {
        if (!headersCompatible(docs[0], doc, err))
            return false;
        out.jobs = std::max(out.jobs, doc.jobs);
    }

    for (const BenchDoc &doc : docs)
        for (const BenchCell &cell : doc.cells) {
            auto dup = std::find_if(
                out.cells.begin(), out.cells.end(),
                [&](const BenchCell &c) {
                    return c.index == cell.index;
                });
            if (dup != out.cells.end()) {
                // Duplicate cell. A success beats a failure — another
                // worker recovered the cell after the first attempt's
                // owner failed/died; of two failures the first is
                // kept (causes may differ between workers); two
                // successes must agree bit-for-bit.
                if (dup->failed && !cell.failed) {
                    *dup = cell;
                    continue;
                }
                if (cell.failed)
                    continue;
                std::string why;
                if (!cellsEqual(*dup, cell, why)) {
                    err = "conflicting duplicates of cell " + cell.id +
                          ": " + why;
                    return false;
                }
                continue;
            }
            out.cells.push_back(cell);
        }

    std::sort(out.cells.begin(), out.cells.end(),
              [](const BenchCell &a, const BenchCell &b) {
                  return a.index < b.index;
              });

    std::string missing;
    std::size_t next = 0;
    for (const BenchCell &c : out.cells) {
        for (; next < c.index; ++next)
            missing += (missing.empty() ? "" : ", ") +
                       std::to_string(next);
        next = c.index + 1;
    }
    for (; next < out.gridCells; ++next)
        missing +=
            (missing.empty() ? "" : ", ") + std::to_string(next);
    if (!missing.empty()) {
        err = "bench " + out.bench +
              ": merged shards do not cover the grid; missing cell "
              "indexes: " +
              missing;
        return false;
    }
    if (out.cells.size() != out.gridCells) {
        err = "bench " + out.bench + ": cell indexes out of range";
        return false;
    }
    return true;
}

bool
benchDocsEquivalent(const BenchDoc &a, const BenchDoc &b,
                    std::string &why)
{
    if (!headersCompatible(a, b, why))
        return false;

    // Walk the union of cell indexes so "missing" names the exact
    // cell rather than collapsing into a bare count mismatch, and so
    // a failure row on either side gets its own diagnostic.
    auto findByIndex = [](const BenchDoc &doc,
                          std::size_t index) -> const BenchCell * {
        for (const BenchCell &c : doc.cells)
            if (c.index == index)
                return &c;
        return nullptr;
    };
    std::size_t maxIndex = 0;
    for (const BenchCell &c : a.cells)
        maxIndex = std::max(maxIndex, c.index + 1);
    for (const BenchCell &c : b.cells)
        maxIndex = std::max(maxIndex, c.index + 1);

    for (std::size_t i = 0; i < maxIndex; ++i) {
        const BenchCell *ca = findByIndex(a, i);
        const BenchCell *cb = findByIndex(b, i);
        if (!ca && !cb)
            continue;
        if (!ca || !cb) {
            const BenchCell &have = ca ? *ca : *cb;
            why = "cell " + have.id + " (index " + std::to_string(i) +
                  ") missing from the " +
                  (ca ? "second" : "first") + " report";
            return false;
        }
        if (ca->failed && cb->failed) {
            why = "cell " + ca->id + " (index " + std::to_string(i) +
                  ") failed in both reports (first: " +
                  ca->failureCause + "; second: " + cb->failureCause +
                  ")";
            return false;
        }
        if (!cellsEqual(*ca, *cb, why))
            return false;
    }
    return true;
}

bool
benchDocIsSubset(const BenchDoc &sub, const BenchDoc &full,
                 std::string &why)
{
    if (sub.bench != full.bench) {
        why = "bench names differ (" + sub.bench + " vs " +
              full.bench + ")";
        return false;
    }
    if (sub.quick != full.quick ||
        sub.budgets.warmup != full.budgets.warmup ||
        sub.budgets.measure != full.budgets.measure ||
        sub.budgets.scale != full.budgets.scale) {
        why = "budgets differ for bench " + sub.bench;
        return false;
    }
    // Grid sizes deliberately uncompared: a --workload run covers a
    // restricted grid, so its indexes are its own. Cells match by id.
    for (const BenchCell &cell : sub.cells) {
        auto match = std::find_if(full.cells.begin(), full.cells.end(),
                                  [&](const BenchCell &c) {
                                      return c.id == cell.id;
                                  });
        if (match == full.cells.end()) {
            why = "bench " + sub.bench + ": cell " + cell.id +
                  " has no counterpart in the full report";
            return false;
        }
        if (cell.failed && match->failed) {
            why = "bench " + sub.bench + ": cell " + cell.id +
                  " failed in both reports (subset: " +
                  cell.failureCause + "; full: " + match->failureCause +
                  ")";
            return false;
        }
        BenchCell reindexed = cell;
        reindexed.index = match->index;
        if (!cellsEqual(reindexed, *match, why))
            return false;
    }
    return true;
}

// ---------------------------------------------------------------------------
// Perf-series comparison
// ---------------------------------------------------------------------------

bool
loadPerfSeries(const std::string &path, std::vector<PerfSample> &out,
               std::string &err)
{
    out.clear();
    json::Value v;
    if (!json::parseFile(path, v, err))
        return false;
    if (!v.isObject()) {
        err = path + ": not a JSON object";
        return false;
    }

    if (v.find("schema")) {
        // A tstream-bench document or combined report: one series per
        // cell, named "<bench>/<cell id>", valued by wall_seconds.
        std::vector<BenchDoc> docs;
        if (!readBenchDocs(path, docs, err))
            return false;
        for (const BenchDoc &doc : docs)
            for (const BenchCell &cell : doc.cells) {
                if (cell.failed)
                    continue; // a failure's wall time is not a perf point
                out.push_back(PerfSample{doc.bench + "/" + cell.id,
                                         cell.wallSeconds * 1e9});
            }
        if (out.empty()) {
            err = path + ": report holds no cells";
            return false;
        }
        return true;
    }

    const json::Value *benches = v.find("benchmarks");
    if (!benches || !benches->isArray()) {
        err = path + ": neither a Google Benchmark report (no "
                     "\"benchmarks\" array) nor a tstream-bench "
                     "report (no \"schema\")";
        return false;
    }
    for (const json::Value &jb : benches->items()) {
        const json::Value *name = jb.find("name");
        const json::Value *cpu = jb.find("cpu_time");
        if (!name || !cpu) {
            err = path + ": benchmark entry without name/cpu_time";
            return false;
        }
        // Aggregate rows (mean/median/stddev of repetitions) would
        // double-count; only raw iterations enter the series.
        if (const json::Value *rt = jb.find("run_type");
            rt && rt->asString() != "iteration")
            continue;
        double ns = cpu->asDouble();
        if (const json::Value *u = jb.find("time_unit")) {
            const std::string &unit = u->asString();
            if (unit == "us")
                ns *= 1e3;
            else if (unit == "ms")
                ns *= 1e6;
            else if (unit == "s")
                ns *= 1e9;
            else if (unit != "ns") {
                err = path + ": unknown time_unit " + unit;
                return false;
            }
        }
        PerfSample *dup = nullptr;
        for (PerfSample &s : out)
            if (s.name == name->asString())
                dup = &s;
        if (dup)
            dup->timeNs = std::min(dup->timeNs, ns); // best repetition
        else
            out.push_back(PerfSample{name->asString(), ns});
    }
    if (out.empty()) {
        err = path + ": no benchmark iterations in report";
        return false;
    }
    return true;
}

PerfComparison
comparePerfSeries(const std::vector<PerfSample> &base,
                  const std::vector<PerfSample> &current,
                  const PerfGateOptions &opts)
{
    const bool filtered = !opts.series.empty();
    auto gated = [&](const std::string &name) {
        if (!filtered)
            return true;
        for (const std::string &s : opts.series)
            if (s == name)
                return true;
        return false;
    };
    auto findIn = [](const std::vector<PerfSample> &v,
                     const std::string &name) -> const PerfSample * {
        for (const PerfSample &s : v)
            if (s.name == name)
                return &s;
        return nullptr;
    };

    PerfComparison cmp;
    for (const PerfSample &b : base) {
        if (!gated(b.name))
            continue;
        PerfDelta d;
        d.name = b.name;
        d.baseNs = b.timeNs;
        if (const PerfSample *c = findIn(current, b.name)) {
            d.currentNs = c->timeNs;
            d.ratio = b.timeNs > 0 ? c->timeNs / b.timeNs : 0.0;
            if (d.ratio > opts.maxRegress) {
                d.status = PerfDelta::Status::Regressed;
                ++cmp.regressed;
                cmp.pass = false;
            } else if (opts.maxRegress > 0 &&
                       d.ratio < 1.0 / opts.maxRegress) {
                d.status = PerfDelta::Status::Improved;
            } else {
                d.status = PerfDelta::Status::Ok;
            }
        } else {
            d.status = PerfDelta::Status::Missing;
            ++cmp.missing;
            cmp.pass = false;
        }
        cmp.rows.push_back(std::move(d));
    }

    // Series named in the gate but absent from the baseline: a typo
    // must not silently disable the gate.
    if (filtered)
        for (const std::string &name : opts.series)
            if (!findIn(base, name)) {
                PerfDelta d;
                d.name = name;
                if (const PerfSample *c = findIn(current, name))
                    d.currentNs = c->timeNs;
                d.status = PerfDelta::Status::Missing;
                ++cmp.missing;
                cmp.pass = false;
                cmp.rows.push_back(std::move(d));
            }

    for (const PerfSample &c : current) {
        if (filtered)
            break; // gated-but-absent names were reported Missing above
        if (findIn(base, c.name))
            continue;
        PerfDelta d;
        d.name = c.name;
        d.currentNs = c.timeNs;
        d.status = PerfDelta::Status::Fresh;
        ++cmp.fresh;
        cmp.rows.push_back(std::move(d));
    }
    return cmp;
}

TrendTable
computeTrend(const std::vector<std::string> &labels,
             const std::vector<std::vector<PerfSample>> &series,
             const std::vector<std::string> &filter)
{
    TrendTable table;
    table.labels = labels;

    auto wanted = [&](const std::string &name) {
        if (filter.empty())
            return true;
        for (const std::string &f : filter)
            if (f == name)
                return true;
        return false;
    };
    auto rowFor = [&](const std::string &name) -> TrendSeries & {
        for (TrendSeries &r : table.rows)
            if (r.name == name)
                return r;
        table.rows.push_back(TrendSeries{});
        table.rows.back().name = name;
        table.rows.back().timesNs.assign(labels.size(), 0.0);
        return table.rows.back();
    };

    const std::size_t n =
        std::min(labels.size(), series.size());
    for (std::size_t i = 0; i < n; ++i)
        for (const PerfSample &s : series[i])
            if (wanted(s.name))
                rowFor(s.name).timesNs[i] = s.timeNs;

    for (TrendSeries &r : table.rows) {
        double first = 0.0, last = 0.0;
        std::size_t points = 0;
        for (double t : r.timesNs) {
            if (t <= 0)
                continue;
            if (points == 0)
                first = t;
            last = t;
            ++points;
        }
        r.lastVsFirst = points >= 2 && first > 0 ? last / first : 0.0;
    }
    return table;
}

} // namespace tstream
