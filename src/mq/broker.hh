/**
 * @file
 * Message broker engine: per-topic segmented logs with producer
 * append, consumer cursor replay, and retention trimming.
 *
 * The broker is the scenario "Consistent Streaming Through Time"
 * (Barga et al.) motivates: event delivery replays, in order, the
 * exact block sequence a producer appended — once per subscribed
 * consumer — so the same miss sequences recur with every fan-out.
 * Retention trimming returns the oldest segments to a recycling
 * arena, so a steady-state broker appends into *reused* segment
 * addresses; both the replay and the append sides are therefore
 * temporal streams by construction. All state lives in the simulated
 * user space of the broker process.
 */

#ifndef TSTREAM_MQ_BROKER_HH
#define TSTREAM_MQ_BROKER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "kernel/ctx.hh"
#include "mem/sim_alloc.hh"
#include "trace/categories.hh"

namespace tstream
{

/** Tunables of the broker engine. */
struct MqConfig
{
    std::uint32_t topics = 48;
    /** Blocks per log segment (64 blocks = one 4 KB page). */
    std::uint32_t segmentBlocks = 64;
    /** Retention: max live segments per topic before trimming. */
    std::uint32_t retentionSegments = 20;
    /** Zipf skew of topic popularity. */
    double zipf = 0.8;

    /** Apply a footprint scale factor (topic count scales; segment
     *  geometry is a format property and stays fixed). */
    void
    rescale(double s)
    {
        topics = std::max<std::uint32_t>(
            8, static_cast<std::uint32_t>(topics * s));
    }
};

/** A consumer's position in one topic's log. */
struct MqCursor
{
    std::uint32_t topic = 0;
    std::uint64_t offset = 0; ///< logical byte offset into the log
    Addr block = 0;           ///< simulated cursor state block
};

/** The broker engine. */
class Broker
{
  public:
    /**
     * @param cfg  Engine tunables.
     * @param reg  Function registry for attribution.
     * @param pid  Simulated process id (selects the user segment).
     */
    Broker(const MqConfig &cfg, FunctionRegistry &reg, unsigned pid);

    /**
     * Append a @p bytes message to @p topic: topic descriptor update,
     * sequential segment write (rolling to a recycled segment when
     * full), offset-index maintenance, and retention trimming.
     * @param payload Source address of the payload already in the
     *                broker's address space (0 = header-only model;
     *                the engine then only writes the log).
     */
    void publish(SysCtx &ctx, std::uint32_t topic, std::uint32_t bytes,
                 Addr payload = 0);

    /** Register a cursor for @p topic starting at the log tail. */
    std::size_t subscribe(std::uint32_t topic);

    /**
     * Replay up to @p maxBytes from cursor @p cur: cursor read, index
     * lookup, sequential log reads in segment order, cursor advance.
     * A cursor that fell behind retention snaps to the oldest live
     * segment first.
     * @return bytes delivered (0 = caught up with the producer).
     */
    std::uint32_t consume(SysCtx &ctx, std::size_t cur,
                          std::uint32_t maxBytes);

    /** Bytes the cursor still has to replay. */
    std::uint64_t backlog(std::size_t cur) const;

    const MqConfig &config() const { return cfg_; }
    std::uint64_t published() const { return published_; }
    std::uint64_t delivered() const { return delivered_; }
    std::uint64_t trims() const { return trims_; }

  private:
    /** One topic's live log. */
    struct Topic
    {
        Addr desc = 0;  ///< topic descriptor block (hot)
        Addr index = 0; ///< offset -> segment index block
        std::deque<Addr> segments;
        std::uint64_t headOffset = 0; ///< next append offset
        std::uint64_t baseOffset = 0; ///< offset of segments.front()
    };

    void rollSegment(SysCtx &ctx, Topic &t);

    MqConfig cfg_;
    BumpAllocator heap_;
    RecyclingAllocator segmentArena_;

    std::vector<Topic> topics_;
    std::vector<MqCursor> cursors_;

    FnId fnAppend_, fnReplay_, fnIndex_, fnCursor_, fnTrim_;
    std::uint64_t published_ = 0, delivered_ = 0, trims_ = 0;
};

} // namespace tstream

#endif // TSTREAM_MQ_BROKER_HH
