#include "mq/broker.hh"

#include <algorithm>

#include "kernel/kernel.hh"

namespace tstream
{

namespace
{

/** Carve the bounded segment-recycling arena out of @p heap. */
RecyclingAllocator
makeSegmentArena(BumpAllocator &heap, const MqConfig &cfg)
{
    const Addr segBytes = Addr{cfg.segmentBlocks} * kBlockSize;
    // Worst case: every topic at retention depth, plus slack for the
    // segments in flight between roll and trim.
    const Addr bytes =
        Addr{cfg.topics} * (cfg.retentionSegments + 4) * segBytes;
    const Addr base = heap.alloc(bytes, kPageSize);
    return RecyclingAllocator(base, base + bytes, segBytes);
}

} // namespace

Broker::Broker(const MqConfig &cfg, FunctionRegistry &reg, unsigned pid)
    : cfg_(cfg),
      heap_(seg::userHeap(pid), seg::userHeap(pid) + seg::kUserStride),
      segmentArena_(makeSegmentArena(heap_, cfg)),
      fnAppend_(reg.intern("mq_log_append", Category::MqTopicLog)),
      fnReplay_(reg.intern("mq_log_replay", Category::MqTopicLog)),
      fnIndex_(reg.intern("mq_index_lookup", Category::MqCursorIndex)),
      fnCursor_(reg.intern("mq_cursor_advance",
                           Category::MqCursorIndex)),
      fnTrim_(reg.intern("mq_retention_trim", Category::MqCursorIndex))
{
    topics_.resize(cfg_.topics);
    for (Topic &t : topics_) {
        t.desc = heap_.allocBlocks(1);
        t.index = heap_.allocBlocks(1);
        t.segments.push_back(segmentArena_.alloc());
    }
}

void
Broker::rollSegment(SysCtx &ctx, Topic &t)
{
    // Close the full segment in the offset index and open a recycled
    // one; trim the oldest past retention, so steady-state appends
    // cycle through the same segment addresses.
    ctx.userWrite(t.index, 16, fnIndex_);
    t.segments.push_back(segmentArena_.alloc());
    if (t.segments.size() > cfg_.retentionSegments) {
        ctx.userRead(t.segments.front(), kBlockSize, fnTrim_);
        ctx.userWrite(t.index, 16, fnTrim_);
        segmentArena_.free(t.segments.front());
        t.segments.pop_front();
        t.baseOffset += Addr{cfg_.segmentBlocks} * kBlockSize;
        ++trims_;
    }
}

void
Broker::publish(SysCtx &ctx, std::uint32_t topic, std::uint32_t bytes,
                Addr payload)
{
    Topic &t = topics_[topic % topics_.size()];
    const Addr segBytes = Addr{cfg_.segmentBlocks} * kBlockSize;

    // Topic descriptor: head offset + epoch bump (hot block).
    ctx.userRead(t.desc, 32, fnAppend_);
    ctx.userWrite(t.desc, 16, fnAppend_);

    std::uint32_t left = bytes;
    std::uint32_t srcOff = 0;
    while (left > 0) {
        const Addr segPos = t.headOffset - t.baseOffset;
        const std::size_t segIdx =
            static_cast<std::size_t>(segPos / segBytes);
        const Addr inSeg = segPos % segBytes;
        const std::uint32_t chunk = static_cast<std::uint32_t>(
            std::min<Addr>(left, segBytes - inSeg));
        const Addr dst = t.segments[segIdx] + inSeg;
        if (payload != 0)
            ctx.kernel().copy().memcpyUser(ctx, dst, payload + srcOff,
                                           chunk);
        else
            ctx.userWrite(dst, chunk, fnAppend_);
        // Per-message framing header at the front of the write.
        ctx.userWrite(dst, 16, fnAppend_);
        t.headOffset += chunk;
        left -= chunk;
        srcOff += chunk;
        if ((t.headOffset - t.baseOffset) % segBytes == 0)
            rollSegment(ctx, t);
    }
    ctx.exec(60);
    ++published_;
}

std::size_t
Broker::subscribe(std::uint32_t topic)
{
    MqCursor c;
    c.topic = topic % topics_.size();
    c.offset = topics_[c.topic].headOffset;
    c.block = heap_.allocBlocks(1);
    cursors_.push_back(c);
    return cursors_.size() - 1;
}

std::uint64_t
Broker::backlog(std::size_t cur) const
{
    const MqCursor &c = cursors_[cur];
    const Topic &t = topics_[c.topic];
    const std::uint64_t from = std::max(c.offset, t.baseOffset);
    return t.headOffset - from;
}

std::uint32_t
Broker::consume(SysCtx &ctx, std::size_t cur, std::uint32_t maxBytes)
{
    MqCursor &c = cursors_[cur];
    Topic &t = topics_[c.topic];
    const Addr segBytes = Addr{cfg_.segmentBlocks} * kBlockSize;

    ctx.userRead(c.block, 32, fnCursor_);
    if (c.offset < t.baseOffset) {
        // Fell behind retention: snap to the oldest live segment.
        ctx.userRead(t.index, 32, fnIndex_);
        c.offset = t.baseOffset;
    }
    const std::uint64_t avail = t.headOffset - c.offset;
    std::uint32_t n = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(maxBytes, avail));
    if (n == 0)
        return 0;

    // Offset -> segment translation, then the sequential replay: the
    // reads visit exactly the block sequence the producer wrote.
    ctx.userRead(t.index, 32, fnIndex_);
    std::uint32_t left = n;
    while (left > 0) {
        const Addr segPos = c.offset - t.baseOffset;
        const std::size_t segIdx =
            static_cast<std::size_t>(segPos / segBytes);
        const Addr inSeg = segPos % segBytes;
        const std::uint32_t chunk = static_cast<std::uint32_t>(
            std::min<Addr>(left, segBytes - inSeg));
        ctx.userRead(t.segments[segIdx] + inSeg, chunk, fnReplay_);
        c.offset += chunk;
        left -= chunk;
    }
    ctx.userWrite(c.block, 16, fnCursor_);
    ctx.exec(40);
    delivered_ += n;
    return n;
}

} // namespace tstream
