#include "db/txn.hh"

namespace tstream
{

TxnManager::TxnManager(Kernel &kern, unsigned nclients,
                       const TxnConfig &cfg)
    : kern_(kern), cfg_(cfg), tableLock_(kern.makeMutex()),
      logLock_(kern.makeMutex()), nclients_(nclients)
{
    auto &heap = kern.kernelHeap();
    txnTable_ = heap.alloc(cfg.maxTxns * kBlockSize, kBlockSize);
    logAnchor_ = heap.allocBlocks(1);
    logBase_ = heap.alloc(cfg.logBlocks * kBlockSize, kBlockSize);
    cursorBase_ = heap.alloc(Addr{nclients} * 4 * kBlockSize, kBlockSize);

    auto &reg = kern.engine().registry();
    fnBegin_ = reg.intern("sqlrrBeginTxn", Category::DbRequestControl);
    fnCommit_ = reg.intern("sqlrrCommit", Category::DbRequestControl);
    fnLog_ = reg.intern("sqlpgLogWrite", Category::DbRequestControl);
    fnCursor_ = reg.intern("sqlraCursorUpdate",
                           Category::DbRequestControl);
}

std::uint32_t
TxnManager::begin(SysCtx &ctx, std::uint32_t client)
{
    tableLock_.acquire(ctx);
    const std::uint32_t slot = nextSlot_;
    nextSlot_ = (nextSlot_ + 1) % cfg_.maxTxns;
    // Scan for a free slot (bounded), then claim it.
    ctx.read(txnTable_ + slot * kBlockSize, 32, fnBegin_);
    ctx.write(txnTable_ + slot * kBlockSize, 32, fnBegin_);
    ctx.read(logAnchor_, 16, fnBegin_);
    tableLock_.release(ctx);
    touchCursor(ctx, client, /*write=*/true);
    ctx.exec(120);
    return slot;
}

void
TxnManager::logAppend(SysCtx &ctx, std::uint32_t bytes)
{
    logLock_.acquire(ctx);
    const std::uint64_t blocks = (bytes + kBlockSize - 1) / kBlockSize;
    for (std::uint64_t b = 0; b < blocks; ++b) {
        ctx.write(logBase_ + (logTail_ % cfg_.logBlocks) * kBlockSize,
                  static_cast<std::uint32_t>(kBlockSize), fnLog_);
        ++logTail_;
    }
    ctx.write(logAnchor_, 16, fnLog_);
    logLock_.release(ctx);
    ctx.exec(40 + 10 * static_cast<std::uint32_t>(blocks));
}

void
TxnManager::commit(SysCtx &ctx, std::uint32_t txn)
{
    logAppend(ctx, 96); // commit record
    tableLock_.acquire(ctx);
    ctx.write(txnTable_ + (txn % cfg_.maxTxns) * kBlockSize, 32,
              fnCommit_);
    tableLock_.release(ctx);
    ctx.exec(80);
}

void
TxnManager::touchCursor(SysCtx &ctx, std::uint32_t client, bool write)
{
    const Addr area =
        cursorBase_ + Addr{client % nclients_} * 4 * kBlockSize;
    ctx.read(area, 32, fnCursor_);
    ctx.read(area + 2 * kBlockSize, 16, fnCursor_);
    if (write)
        ctx.write(area + kBlockSize, 32, fnCursor_);
    ctx.exec(35);
}

} // namespace tstream
