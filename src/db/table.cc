#include "db/table.hh"

namespace tstream
{

HeapTable::HeapTable(Kernel &kern, BufferPool &bp, PageId first_page,
                     std::uint64_t npages, unsigned tuples_per_page,
                     unsigned tuple_bytes)
    : kern_(kern), bp_(bp), firstPage_(first_page), npages_(npages),
      tuplesPerPage_(tuples_per_page), tupleBytes_(tuple_bytes)
{
    auto &reg = kern.engine().registry();
    fnFetch_ = reg.intern("sqldRowFetch", Category::DbIndexPageTuple);
    fnUpdate_ = reg.intern("sqldRowUpdate", Category::DbIndexPageTuple);
    fnScan_ = reg.intern("sqldScanNext", Category::DbIndexPageTuple);
}

Addr
HeapTable::tupleAddr(Addr page_base, std::uint64_t rid) const
{
    const std::uint64_t slot = rid % tuplesPerPage_;
    // 128 B page header, then fixed-size slots.
    return page_base + 128 + slot * tupleBytes_;
}

void
HeapTable::fetch(SysCtx &ctx, std::uint64_t rid)
{
    const PageId page = firstPage_ + (rid / tuplesPerPage_) % npages_;
    const Addr base = bp_.fix(ctx, page);
    ctx.userRead(base, 32, fnFetch_);                  // page header
    ctx.userRead(base + 96 + (rid % tuplesPerPage_) * 4, 4,
             fnFetch_);                            // slot directory
    ctx.userRead(tupleAddr(base, rid), tupleBytes_, fnFetch_);
    ctx.exec(45);
}

void
HeapTable::update(SysCtx &ctx, std::uint64_t rid)
{
    const PageId page = firstPage_ + (rid / tuplesPerPage_) % npages_;
    const Addr base = bp_.fix(ctx, page, /*dirty=*/true);
    ctx.userRead(base, 32, fnUpdate_);
    ctx.userRead(tupleAddr(base, rid), tupleBytes_, fnUpdate_);
    // Rewrite a field's worth of the tuple.
    ctx.userWrite(tupleAddr(base, rid) + 16, 32, fnUpdate_);
    ctx.exec(60);
}

void
HeapTable::scan(SysCtx &ctx, std::uint64_t first, std::uint64_t npages,
                double tuple_fraction,
                const std::function<void(SysCtx &, std::uint64_t)>
                    &tuple_cb)
{
    for (std::uint64_t p = 0; p < npages; ++p) {
        const std::uint64_t rel = (first + p) % npages_;
        const PageId page = firstPage_ + rel;
        const Addr base = bp_.fix(ctx, page);
        ctx.userRead(base, 32, fnScan_);
        const auto ntuples = static_cast<std::uint64_t>(
            tuplesPerPage_ * tuple_fraction + 0.5);
        for (std::uint64_t t = 0; t < ntuples; ++t) {
            const std::uint64_t rid = rel * tuplesPerPage_ + t;
            ctx.userRead(tupleAddr(base, rid), tupleBytes_, fnScan_);
            ctx.exec(25);
            if (tuple_cb)
                tuple_cb(ctx, rid);
        }
    }
}

} // namespace tstream
