/**
 * @file
 * SQL runtime interpreter (the sqlri module): executes parsed plan
 * operators, "analogous to the Perl_pp_* functions of the perl
 * interpreter" (paper Table 2).
 *
 * Each statement type has a fixed operator array in the shared
 * package cache; execution walks it in order (reading each operator
 * descriptor) and updates the statement's shared runtime section
 * (usage counters / iterator state), which is what makes the plan
 * blocks migrate between agents' CPUs and re-miss coherently with
 * ~90% repetition.
 */

#ifndef TSTREAM_DB_INTERP_HH
#define TSTREAM_DB_INTERP_HH

#include <cstdint>
#include <vector>

#include "kernel/kernel.hh"
#include "mem/sim_alloc.hh"

namespace tstream
{

/** Plan interpreter over a shared package cache. */
struct InterpConfig
{
    unsigned nplans = 48;      ///< cached statement sections
    unsigned opsPerPlan = 24;  ///< operator descriptors per plan
};

class PlanInterp
{
  public:
    PlanInterp(Kernel &kern, const InterpConfig &cfg = {});

    /**
     * Execute plan @p plan_id: walk its operator array, invoking
     * @p op_cb for each operator (the callback performs the data
     * access the operator stands for, e.g. an index probe), and
     * update the shared runtime section.
     *
     * @param op_cb may be empty for pure-interpreter statements.
     */
    template <typename OpCb>
    void
    execute(SysCtx &ctx, std::uint32_t plan_id, OpCb &&op_cb)
    {
        const std::uint32_t p = plan_id % cfg_.nplans;
        const Addr plan = planBase_ + Addr{p} * planBytes();
        // Section header: statement descriptor + usage counter.
        ctx.read(plan, 32, fnOpen_);
        for (unsigned op = 0; op < cfg_.opsPerPlan; ++op) {
            ctx.read(plan + 64 + Addr{op} * kBlockSize, 48, fnFetch_);
            ctx.exec(18);
            op_cb(ctx, op);
        }
        // Shared runtime section update (iterator state, counters).
        ctx.write(plan + 32, 16, fnClose_);
        ctx.exec(50);
    }

    /** Plan footprint in bytes (ops + header). */
    Addr
    planBytes() const
    {
        return (Addr{cfg_.opsPerPlan} + 2) * kBlockSize;
    }

    unsigned planCount() const { return cfg_.nplans; }

  private:
    InterpConfig cfg_;
    Addr planBase_;
    FnId fnOpen_, fnFetch_, fnClose_;
};

} // namespace tstream

#endif // TSTREAM_DB_INTERP_HH
