#include "db/ipc.hh"

namespace tstream
{

DbIpc::DbIpc(Kernel &kern, unsigned nclients)
    : nclients_(nclients)
{
    base_ = kern.kernelHeap().alloc(Addr{nclients} * kAreaBlocks *
                                        kBlockSize,
                                    kBlockSize);
    connTable_ =
        kern.kernelHeap().alloc(Addr{nclients} * kBlockSize, kBlockSize);
    proc_ = kern.syscalls().newProc();
    auto &reg = kern.engine().registry();
    fnRecv_ = reg.intern("sqlccRecv", Category::DbIpc);
    fnSend_ = reg.intern("sqlccSend", Category::DbIpc);
}

Addr
DbIpc::area(std::uint32_t client) const
{
    return base_ + Addr{client % nclients_} * kAreaBlocks * kBlockSize;
}

void
DbIpc::receiveRequest(SysCtx &ctx, std::uint32_t client)
{
    // The worker agent reads the request off the connection socket.
    ctx.kernel().syscalls().readEntry(ctx, proc_, client);
    const Addr a = area(client);
    // Shared connection-manager entry, then header + parameters.
    ctx.read(connTable_ + (client % nclients_) * kBlockSize, 16,
             fnRecv_);
    ctx.read(a, 32, fnRecv_);
    ctx.read(a + kBlockSize, static_cast<std::uint32_t>(2 * kBlockSize),
             fnRecv_);
    ctx.exec(90);
}

void
DbIpc::sendReply(SysCtx &ctx, std::uint32_t client)
{
    ctx.kernel().syscalls().writeEntry(ctx, proc_, client);
    const Addr a = area(client);
    // Reply written into the connection area (3 blocks), the shared
    // connection entry updated, and the next request posted in place
    // (closed-loop client model).
    ctx.write(a + 4 * kBlockSize,
              static_cast<std::uint32_t>(3 * kBlockSize), fnSend_);
    ctx.write(connTable_ + (client % nclients_) * kBlockSize, 16,
              fnSend_);
    ctx.write(a, 32, fnSend_);
    ctx.exec(110);
}

} // namespace tstream
