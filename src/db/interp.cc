#include "db/interp.hh"

namespace tstream
{

PlanInterp::PlanInterp(Kernel &kern, const InterpConfig &cfg)
    : cfg_(cfg)
{
    planBase_ = kern.kernelHeap().alloc(Addr{cfg.nplans} * planBytes(),
                                        kBlockSize);
    auto &reg = kern.engine().registry();
    fnOpen_ = reg.intern("sqlriOpenSection", Category::DbRuntimeInterp);
    fnFetch_ = reg.intern("sqlriFetchOp", Category::DbRuntimeInterp);
    fnClose_ = reg.intern("sqlriCloseSection", Category::DbRuntimeInterp);
}

} // namespace tstream
