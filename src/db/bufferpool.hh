/**
 * @file
 * Database buffer pool: hashed page table, per-frame latches, clock
 * eviction, and demand paging through the kernel block device.
 *
 * Models the sqlpg/sqlb layers of the paper's DB2 categorization: page
 * fixes touch the bucket chain and frame headers (shared, read-write →
 * coherence among agents), and pool misses trigger DMA + copyout I/O,
 * whose destination-frame reads later classify as I/O coherence.
 */

#ifndef TSTREAM_DB_BUFFERPOOL_HH
#define TSTREAM_DB_BUFFERPOOL_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "kernel/kernel.hh"
#include "mem/sim_alloc.hh"

namespace tstream
{

/** Identifier of an on-disk database page. */
using PageId = std::uint64_t;

/** Buffer pool configuration. */
struct BufferPoolConfig
{
    /** Number of 4 KB frames (default 8192 = 32 MB, i.e. 4x L2). */
    unsigned frames = 8192;
    /** Hash bucket count. */
    unsigned buckets = 4096;
    /**
     * Recycle DMA staging buffers for page-ins. OLTP-style steady
     * traffic reuses kernel I/O buffers (repetitive I/O coherence);
     * DSS-style scans stream through fresh ones (the paper's
     * non-repetitive DSS copies).
     */
    bool recycleStaging = true;
};

/** The buffer pool. */
class BufferPool
{
  public:
    BufferPool(Kernel &kern, const BufferPoolConfig &cfg = {});

    /**
     * Fix page @p page, paging it in from disk if absent; returns the
     * frame base address. @p dirty marks the frame modified (write
     * latch + header update).
     */
    Addr fix(SysCtx &ctx, PageId page, bool dirty = false);

    /**
     * Fix a page that is being created (e.g. a fresh B+-tree split
     * page): allocates a frame without any disk read.
     */
    Addr fixNew(SysCtx &ctx, PageId page);

    /** True if the page currently has a frame. */
    bool resident(PageId page) const;

    /** Pool hit rate since construction. */
    double
    hitRate() const
    {
        const std::uint64_t t = hits_ + misses_;
        return t == 0 ? 0.0 : static_cast<double>(hits_) / t;
    }

    std::uint64_t misses() const { return misses_; }

    unsigned frameCount() const { return cfg_.frames; }

  private:
    struct Frame
    {
        PageId page = UINT64_MAX;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    /** Pick a victim frame with a clock sweep (emits header probes). */
    unsigned evict(SysCtx &ctx);

    Kernel &kern_;
    BufferPoolConfig cfg_;
    Addr bucketBase_;  ///< bucket array (1 block per bucket)
    Addr frameHdrBase_; ///< frame headers (1 block each: latch + flags)
    Addr frameBase_;   ///< frame data (4 KB each)
    std::vector<Frame> frames_;
    std::unordered_map<PageId, unsigned> pageMap_;
    unsigned clockHand_ = 0;
    std::uint64_t useTick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;

    FnId fnGetPage_, fnLatch_, fnCastout_;
};

} // namespace tstream

#endif // TSTREAM_DB_BUFFERPOOL_HH
