/**
 * @file
 * B+-tree index with horizontally linked leaves — the paper's
 * motivating example one (Section 2.1).
 *
 * Nodes map 1:1 to buffer-pool pages. Lookups binary-search within
 * each node (touching the same in-page key positions every time) and
 * descend root-to-leaf; range scans follow the leaf sibling links, so
 * overlapping scans re-miss the same non-contiguous leaf sequence —
 * the canonical temporal stream that stride prefetchers cannot
 * capture.
 */

#ifndef TSTREAM_DB_BTREE_HH
#define TSTREAM_DB_BTREE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "db/bufferpool.hh"

namespace tstream
{

/** B+-tree over keys [0, nkeys), bulk-built, with sibling links. */
class BTree
{
  public:
    /**
     * @param bp        Buffer pool backing the node pages.
     * @param first_page First page id of this index's page range.
     * @param fanout    Keys per node.
     */
    BTree(Kernel &kern, BufferPool &bp, PageId first_page,
          unsigned fanout = 128);

    /** Bulk-build a tree over @p nkeys keys (key i maps to rid i). */
    void build(std::uint64_t nkeys);

    /**
     * Point lookup: root-to-leaf descent with in-node binary search.
     * @return the record id for @p key (key order position).
     */
    std::uint64_t lookup(SysCtx &ctx, std::uint64_t key);

    /**
     * Range scan: locate @p key, then follow sibling links over
     * @p count entries, invoking @p rid_cb (may be empty) per entry.
     */
    void rangeScan(SysCtx &ctx, std::uint64_t key, std::uint64_t count,
                   const std::function<void(SysCtx &, std::uint64_t)>
                       &rid_cb = {});

    /**
     * Insert @p key: descent plus leaf entry write; splits when the
     * (emulated) leaf fill exceeds the fanout.
     */
    void insert(SysCtx &ctx, std::uint64_t key);

    /** Height of the tree (levels). */
    unsigned height() const { return height_; }

    /** Pages consumed (for sizing the next index's page range). */
    PageId pagesUsed() const { return nextPage_ - firstPage_; }

    std::uint64_t keyCount() const { return nkeys_; }

  private:
    struct Node
    {
        PageId page;
        bool leaf = false;
        std::uint64_t lowKey = 0;  ///< smallest key in subtree
        std::uint64_t keySpan = 0; ///< keys covered by this subtree
        std::vector<std::unique_ptr<Node>> kids;
        Node *sibling = nullptr; ///< next leaf (leaves only)
        unsigned extraFill = 0;  ///< inserts since build (split model)
    };

    /** Emit the in-node binary-search reads for @p key. */
    void searchNode(SysCtx &ctx, const Node &n, Addr base,
                    std::uint64_t key);

    Node *descend(SysCtx &ctx, std::uint64_t key);

    Kernel &kern_;
    BufferPool &bp_;
    PageId firstPage_;
    PageId nextPage_;
    unsigned fanout_;
    unsigned height_ = 0;
    std::uint64_t nkeys_ = 0;
    std::unique_ptr<Node> root_;
    std::vector<Node *> leaves_;

    FnId fnSearch_, fnScan_, fnInsert_;
};

} // namespace tstream

#endif // TSTREAM_DB_BTREE_HH
