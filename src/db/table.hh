/**
 * @file
 * Heap tables: slotted pages of fixed-size tuples (the sqld layer —
 * sqldRowFetch/sqldRowUpdate in the paper's Table 2).
 *
 * Tuple fetches through the buffer pool are a large share of the "DB2
 * index, page & tuple accesses" category in Tables 4 and 5: repeated
 * OLTP transactions revisit pages in recurring orders (temporal
 * streams), while DSS scans visit each page once (non-repetitive).
 */

#ifndef TSTREAM_DB_TABLE_HH
#define TSTREAM_DB_TABLE_HH

#include <cstdint>
#include <functional>

#include "db/bufferpool.hh"

namespace tstream
{

/** A heap table over a contiguous page range. */
class HeapTable
{
  public:
    /**
     * @param first_page First page id of the table's range.
     * @param npages Number of pages.
     * @param tuples_per_page Slots per page.
     * @param tuple_bytes Tuple size (controls blocks touched).
     */
    HeapTable(Kernel &kern, BufferPool &bp, PageId first_page,
              std::uint64_t npages, unsigned tuples_per_page,
              unsigned tuple_bytes);

    /** Total tuples in the table. */
    std::uint64_t
    tupleCount() const
    {
        return npages_ * tuplesPerPage_;
    }

    PageId firstPage() const { return firstPage_; }
    std::uint64_t pageCount() const { return npages_; }

    /** Fetch tuple @p rid: page fix + slot + field reads. */
    void fetch(SysCtx &ctx, std::uint64_t rid);

    /** Update tuple @p rid: fetch pattern plus field writes. */
    void update(SysCtx &ctx, std::uint64_t rid);

    /**
     * Sequential scan of @p npages pages starting at @p first
     * (relative to the table), reading @p tuple_fraction of each
     * page's tuples and invoking @p tuple_cb per tuple read.
     */
    void scan(SysCtx &ctx, std::uint64_t first, std::uint64_t npages,
              double tuple_fraction,
              const std::function<void(SysCtx &, std::uint64_t)>
                  &tuple_cb = {});

  private:
    Addr tupleAddr(Addr page_base, std::uint64_t rid) const;

    Kernel &kern_;
    BufferPool &bp_;
    PageId firstPage_;
    std::uint64_t npages_;
    unsigned tuplesPerPage_;
    unsigned tupleBytes_;

    FnId fnFetch_, fnUpdate_, fnScan_;
};

} // namespace tstream

#endif // TSTREAM_DB_TABLE_HH
