#include "db/bufferpool.hh"

namespace tstream
{

BufferPool::BufferPool(Kernel &kern, const BufferPoolConfig &cfg)
    : kern_(kern), cfg_(cfg), frames_(cfg.frames)
{
    auto &heap = kern.kernelHeap();
    bucketBase_ = heap.alloc(cfg.buckets * kBlockSize, kBlockSize);
    frameHdrBase_ = heap.alloc(cfg.frames * kBlockSize, kBlockSize);
    // Frame data lives in the dedicated buffer-pool segment.
    frameBase_ = seg::kBufferPool;

    auto &reg = kern.engine().registry();
    fnGetPage_ = reg.intern("sqlbGetPage", Category::DbIndexPageTuple);
    fnLatch_ = reg.intern("sqlbLatchPage", Category::DbIndexPageTuple);
    fnCastout_ = reg.intern("sqlbCastOut", Category::DbIndexPageTuple);
}

bool
BufferPool::resident(PageId page) const
{
    return pageMap_.count(page) != 0;
}

unsigned
BufferPool::evict(SysCtx &ctx)
{
    // Clock sweep: probe frame headers until an old frame is found.
    unsigned probes = 0;
    while (true) {
        clockHand_ = (clockHand_ + 1) % cfg_.frames;
        Frame &f = frames_[clockHand_];
        ctx.read(frameHdrBase_ + clockHand_ * kBlockSize, 16,
                 fnCastout_);
        ++probes;
        if (!f.valid || f.lastUse + cfg_.frames / 2 < useTick_ ||
            probes > 8) {
            if (f.valid)
                pageMap_.erase(f.page);
            return clockHand_;
        }
    }
}

Addr
BufferPool::fixNew(SysCtx &ctx, PageId page)
{
    if (pageMap_.count(page) != 0)
        return fix(ctx, page, /*dirty=*/true);
    ++useTick_;
    const Addr bucket =
        bucketBase_ +
        (page * 0x9e3779b97f4a7c15ull >> 32) % cfg_.buckets * kBlockSize;
    ctx.read(bucket, 16, fnGetPage_);
    const unsigned fi = evict(ctx);
    Frame &f = frames_[fi];
    f.page = page;
    f.valid = true;
    f.dirty = true;
    f.lastUse = useTick_;
    pageMap_[page] = fi;
    ctx.write(bucket, 16, fnGetPage_);
    const Addr hdr = frameHdrBase_ + fi * kBlockSize;
    ctx.write(hdr, 16, fnLatch_);
    ctx.exec(40);
    return frameBase_ + Addr{fi} * kPageSize;
}

Addr
BufferPool::fix(SysCtx &ctx, PageId page, bool dirty)
{
    ++useTick_;

    // Hash bucket probe.
    const Addr bucket =
        bucketBase_ +
        (page * 0x9e3779b97f4a7c15ull >> 32) % cfg_.buckets * kBlockSize;
    ctx.read(bucket, 16, fnGetPage_);

    auto it = pageMap_.find(page);
    unsigned fi;
    if (it != pageMap_.end()) {
        ++hits_;
        fi = it->second;
    } else {
        ++misses_;
        fi = evict(ctx);
        Frame &f = frames_[fi];
        f.page = page;
        f.valid = true;
        f.dirty = false;
        pageMap_[page] = fi;
        // Update the bucket chain.
        ctx.write(bucket, 16, fnGetPage_);
        // Demand page-in: DMA + copyout into the frame (streaming
        // staging buffers: database I/O does not recycle them).
        kern_.blockdev().read(ctx, frameBase_ + Addr{fi} * kPageSize,
                              static_cast<std::uint32_t>(kPageSize),
                              cfg_.recycleStaging);
    }

    Frame &f = frames_[fi];
    f.lastUse = useTick_;
    f.dirty |= dirty;

    // Latch the frame: read + conditional-store on the header block.
    const Addr hdr = frameHdrBase_ + fi * kBlockSize;
    ctx.read(hdr, 16, fnLatch_);
    if (dirty)
        ctx.write(hdr, 16, fnLatch_);
    ctx.exec(30);

    return frameBase_ + Addr{fi} * kPageSize;
}

} // namespace tstream
