#include "db/btree.hh"

#include <cmath>

#include "util/logging.hh"

namespace tstream
{

BTree::BTree(Kernel &kern, BufferPool &bp, PageId first_page,
             unsigned fanout)
    : kern_(kern), bp_(bp), firstPage_(first_page), nextPage_(first_page),
      fanout_(fanout)
{
    auto &reg = kern.engine().registry();
    fnSearch_ = reg.intern("sqliFindKey", Category::DbIndexPageTuple);
    fnScan_ = reg.intern("sqliScanNext", Category::DbIndexPageTuple);
    fnInsert_ = reg.intern("sqliKeyInsert", Category::DbIndexPageTuple);
}

void
BTree::build(std::uint64_t nkeys)
{
    panicIf(root_ != nullptr, "BTree::build called twice");
    panicIf(nkeys == 0, "BTree::build with no keys");
    nkeys_ = nkeys;

    // Build the leaf level, then parent levels bottom-up.
    std::vector<std::unique_ptr<Node>> level;
    std::uint64_t key = 0;
    while (key < nkeys) {
        auto n = std::make_unique<Node>();
        n->page = nextPage_++;
        n->leaf = true;
        n->lowKey = key;
        n->keySpan = std::min<std::uint64_t>(fanout_, nkeys - key);
        key += n->keySpan;
        level.push_back(std::move(n));
    }
    for (std::size_t i = 0; i + 1 < level.size(); ++i)
        level[i]->sibling = level[i + 1].get();
    leaves_.clear();
    for (auto &n : level)
        leaves_.push_back(n.get());
    height_ = 1;

    while (level.size() > 1) {
        std::vector<std::unique_ptr<Node>> parents;
        std::size_t i = 0;
        while (i < level.size()) {
            auto p = std::make_unique<Node>();
            p->page = nextPage_++;
            p->lowKey = level[i]->lowKey;
            const std::size_t take =
                std::min<std::size_t>(fanout_, level.size() - i);
            for (std::size_t k = 0; k < take; ++k) {
                p->keySpan += level[i]->keySpan;
                p->kids.push_back(std::move(level[i]));
                ++i;
            }
            parents.push_back(std::move(p));
        }
        level = std::move(parents);
        ++height_;
    }
    root_ = std::move(level.front());
}

void
BTree::searchNode(SysCtx &ctx, const Node &n, Addr base,
                  std::uint64_t key)
{
    // Binary search over the in-page key array: touch the probed
    // positions (the same ones every time for the same key), 16 B
    // entries from a 64 B header.
    const std::uint64_t entries =
        n.leaf ? n.keySpan : n.kids.size();
    ctx.userRead(base, 32, fnSearch_); // page header + key count
    std::uint64_t lo = 0, hi = entries;
    while (lo < hi) {
        const std::uint64_t mid = (lo + hi) / 2;
        ctx.userRead(base + 64 + mid * 16, 16, fnSearch_);
        const std::uint64_t midKey =
            n.leaf ? n.lowKey + mid
                   : n.kids[static_cast<std::size_t>(mid)]->lowKey;
        if (midKey <= key)
            lo = mid + 1;
        else
            hi = mid;
    }
    ctx.exec(12 * (1 + static_cast<std::uint32_t>(
                           std::log2(static_cast<double>(entries + 1)))));
}

BTree::Node *
BTree::descend(SysCtx &ctx, std::uint64_t key)
{
    panicIf(!root_, "BTree: not built");
    if (key >= nkeys_)
        key = nkeys_ - 1;
    Node *n = root_.get();
    while (true) {
        const Addr base = bp_.fix(ctx, n->page);
        searchNode(ctx, *n, base, key);
        if (n->leaf)
            return n;
        // Pick the child whose span covers the key.
        Node *next = n->kids.back().get();
        for (auto &kid : n->kids) {
            if (key < kid->lowKey + kid->keySpan) {
                next = kid.get();
                break;
            }
        }
        n = next;
    }
}

std::uint64_t
BTree::lookup(SysCtx &ctx, std::uint64_t key)
{
    if (key >= nkeys_)
        key = nkeys_ - 1;
    Node *leaf = descend(ctx, key);
    // Read the rid entry.
    const Addr base = bp_.fix(ctx, leaf->page);
    ctx.userRead(base + 64 + (key - leaf->lowKey) * 16, 16, fnSearch_);
    return key;
}

void
BTree::rangeScan(SysCtx &ctx, std::uint64_t key, std::uint64_t count,
                 const std::function<void(SysCtx &, std::uint64_t)> &rid_cb)
{
    Node *leaf = descend(ctx, key);
    std::uint64_t k = std::min(key, nkeys_ - 1);
    std::uint64_t done = 0;
    while (leaf != nullptr && done < count && k < nkeys_) {
        const Addr base = bp_.fix(ctx, leaf->page);
        const std::uint64_t first = k - leaf->lowKey;
        const std::uint64_t inLeaf =
            std::min(leaf->keySpan - first, count - done);
        // Sequential entry reads within the leaf page.
        ctx.userRead(base + 64 + first * 16,
                 static_cast<std::uint32_t>(inLeaf * 16), fnScan_);
        ctx.exec(static_cast<std::uint32_t>(6 * inLeaf));
        for (std::uint64_t i = 0; i < inLeaf; ++i) {
            if (rid_cb)
                rid_cb(ctx, k + i);
        }
        done += inLeaf;
        k += inLeaf;
        // Follow the sibling link (read the forward pointer).
        ctx.userRead(base + 48, 16, fnScan_);
        leaf = leaf->sibling;
    }
}

void
BTree::insert(SysCtx &ctx, std::uint64_t key)
{
    Node *leaf = descend(ctx, key);
    const Addr base = bp_.fix(ctx, leaf->page, /*dirty=*/true);
    // Shift-and-write of the key entry (modeled as two writes).
    ctx.userWrite(base + 64 + (key - leaf->lowKey) * 16, 32, fnInsert_);
    ctx.userWrite(base, 16, fnInsert_); // header: entry count
    ctx.exec(40);

    // Emulated split: an over-full leaf allocates a fresh page and
    // rewrites half of both pages. Leaves absorb several fanouts of
    // slack before splitting (free-space management), so splits are
    // occasional, not per-fanout. (The logical key mapping stays
    // unchanged — the split models the access pattern only.)
    if (++leaf->extraFill >= 4 * fanout_) {
        leaf->extraFill = 0;
        const PageId fresh = nextPage_++;
        const Addr nb = bp_.fixNew(ctx, fresh);
        ctx.userWrite(nb, static_cast<std::uint32_t>(kPageSize / 2),
                  fnInsert_);
        ctx.userWrite(base, 64, fnInsert_);
        ctx.exec(300);
    }
}

} // namespace tstream
