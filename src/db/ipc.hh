/**
 * @file
 * DB2 client-server interprocess communication: per-connection
 * request/response message areas passed between the communication
 * agent and worker agents ("functions which pass data between the DB2
 * server and client processes", paper Table 2).
 *
 * Message buffers are fixed per connection and written by whichever
 * CPU last serviced the connection, so they bounce between CPUs —
 * small, hot, highly repetitive coherence traffic.
 */

#ifndef TSTREAM_DB_IPC_HH
#define TSTREAM_DB_IPC_HH

#include <cstdint>

#include "kernel/kernel.hh"
#include "mem/sim_alloc.hh"

namespace tstream
{

/** Client connection message areas. */
class DbIpc
{
  public:
    DbIpc(Kernel &kern, unsigned nclients);

    /** Worker agent receives the next request of @p client. */
    void receiveRequest(SysCtx &ctx, std::uint32_t client);

    /** Worker agent sends the reply and posts the next request
     *  (emulating the always-ready closed-loop client). */
    void sendReply(SysCtx &ctx, std::uint32_t client);

  private:
    Addr area(std::uint32_t client) const;

    unsigned nclients_;
    Addr base_;
    Addr connTable_; ///< shared connection-manager state
    ProcDesc proc_{};
    FnId fnRecv_, fnSend_;
    static constexpr Addr kAreaBlocks = 8;
};

} // namespace tstream

#endif // TSTREAM_DB_IPC_HH
