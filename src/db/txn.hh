/**
 * @file
 * Transaction and request control: the sqlrr/sqlra modules — the
 * active transaction table, per-agent cursors, and the write-ahead
 * log. The paper attributes these meta-data structures ("locks,
 * transaction tables, ... manipulated by the runtime") to the bulk of
 * the OLTP coherence activity, with ~90% miss repetition.
 */

#ifndef TSTREAM_DB_TXN_HH
#define TSTREAM_DB_TXN_HH

#include <cstdint>
#include <vector>

#include "kernel/kernel.hh"
#include "mem/sim_alloc.hh"

namespace tstream
{

/** Transaction manager configuration. */
struct TxnConfig
{
    unsigned maxTxns = 64;
    /** Circular log buffer size in blocks (reused → coherence). */
    unsigned logBlocks = 4096;
};

/** Transaction table, cursors, and log. */
class TxnManager
{
  public:
    TxnManager(Kernel &kern, unsigned nclients,
               const TxnConfig &cfg = {});

    /**
     * Begin a transaction for @p client: txn-table slot write under
     * the table lock, request-context setup (cursor area), log anchor
     * read.
     */
    std::uint32_t begin(SysCtx &ctx, std::uint32_t client);

    /** Append @p bytes of redo to the circular log buffer. */
    void logAppend(SysCtx &ctx, std::uint32_t bytes);

    /** Commit: log force record + txn-table slot release. */
    void commit(SysCtx &ctx, std::uint32_t txn);

    /** Touch the client's cursor/request context (sqlra). */
    void touchCursor(SysCtx &ctx, std::uint32_t client, bool write);

  private:
    Kernel &kern_;
    TxnConfig cfg_;
    SimMutex tableLock_;
    SimMutex logLock_;
    Addr txnTable_;   ///< maxTxns slots, 1 block each
    Addr logAnchor_;  ///< LSN anchor block
    Addr logBase_;    ///< circular log buffer
    Addr cursorBase_; ///< per-client cursor areas (4 blocks each)
    unsigned nclients_;
    std::uint64_t logTail_ = 0; ///< block offset into the log
    std::uint32_t nextSlot_ = 0;

    FnId fnBegin_, fnCommit_, fnLog_, fnCursor_;
};

} // namespace tstream

#endif // TSTREAM_DB_TXN_HH
