/**
 * @file
 * Perl interpreter emulator for FastCGI dynamic-content generation.
 *
 * Each perl process owns a compiled op-tree for the SPECweb-style
 * script, a pad/scratch arena, and input/output buffers, all in its
 * own user address space. Request handling walks the same op sequence
 * every time (with small data-dependent variation), which is why the
 * paper finds Perl_sv_gets to be the single most repetitive function
 * (~99%) and the Perl_pp_* engine ~75% repetitive (Section 5.1).
 */

#ifndef TSTREAM_WEB_PERL_HH
#define TSTREAM_WEB_PERL_HH

#include <cstdint>

#include "kernel/kernel.hh"
#include "mem/sim_alloc.hh"

namespace tstream
{

/** Configuration of one perl process. */
struct PerlConfig
{
    unsigned opCount = 192;   ///< op-tree nodes of the script
    unsigned padSlots = 256;  ///< lexical pad entries
    double branchNoise = 0.12; ///< fraction of ops skipped per request
};

/** One FastCGI perl process's interpreter state. */
class PerlProcess
{
  public:
    /**
     * @param pid Simulated process id (selects the user segment).
     */
    PerlProcess(Kernel &kern, unsigned pid, const PerlConfig &cfg = {});

    /** Input buffer the pipe copyout delivers request bytes into. */
    Addr inputBuf() const { return inBuf_; }

    /** Output buffer the generated page is written to. */
    Addr outputBuf() const { return outBuf_; }

    /**
     * Perl_sv_gets: parse the delivered request line from the input
     * buffer into SV string structures.
     */
    void parseInput(SysCtx &ctx, std::uint32_t len);

    /**
     * Walk the script's op-tree, touching pads and scratch SVs, and
     * write @p response_len bytes of generated page into the output
     * buffer.
     */
    void executeScript(SysCtx &ctx, std::uint32_t response_len);

  private:
    PerlConfig cfg_;
    Addr opTree_; ///< op nodes, 1 block each
    Addr pad_;    ///< lexical pad SVs
    Addr svArena_; ///< scratch SV headers (reused)
    Addr inBuf_;
    Addr outBuf_;

    FnId fnSvGets_, fnPpHot_, fnPpConst_, fnPpPrint_, fnRunops_;
};

} // namespace tstream

#endif // TSTREAM_WEB_PERL_HH
