/**
 * @file
 * In-memory key-value store engine (memcached-shaped): a bucketed
 * hash index with chained item headers, slab-allocated values, and
 * per-slab-class LRU eviction that *reuses* segment addresses.
 *
 * The reuse discipline is the point: like the kernel's mblk and
 * packet-buffer arenas, evicted item headers and value segments are
 * recycled LIFO, so a busy cache revisits the same addresses in the
 * same pointer-chasing order (bucket -> chain -> header -> value)
 * request after request — exactly the recurring miss sequences the
 * paper calls temporal streams, now produced by a post-paper
 * commercial server application. All state lives in the simulated
 * user address space of the cache process; accesses go through
 * SysCtx::userRead/userWrite so the TLB/MMU model applies.
 */

#ifndef TSTREAM_KV_KVSTORE_HH
#define TSTREAM_KV_KVSTORE_HH

#include <cstdint>
#include <vector>

#include "kernel/ctx.hh"
#include "mem/sim_alloc.hh"
#include "trace/categories.hh"

namespace tstream
{

/** Tunables of the store engine. */
struct KvConfig
{
    /** Key population (ids in [0, keys)). */
    std::uint64_t keys = 200'000;
    /** Hash buckets (16 B headers, contiguous array). */
    std::uint32_t buckets = 32'768;
    /** Resident item capacity; beyond it the LRU evicts. */
    std::uint32_t capacity = 60'000;
    /** Largest value size in blocks (size classes 1..max). */
    std::uint32_t valueBlocksMax = 8;
    /** Zipf skew of key popularity. */
    double zipf = 0.95;

    /** Apply a footprint scale factor. */
    void
    rescale(double s)
    {
        auto f = [s](std::uint64_t v) {
            return std::max<std::uint64_t>(
                64, static_cast<std::uint64_t>(v * s));
        };
        keys = f(keys);
        buckets = static_cast<std::uint32_t>(f(buckets));
        capacity = static_cast<std::uint32_t>(f(capacity));
    }
};

/**
 * The store engine. Callers (the KV workload and the phased mix)
 * drive get/set/del with simulated keys; the engine emits the memory
 * accesses of the index walk, the value traffic, and the slab/LRU
 * bookkeeping.
 */
class KvStore
{
  public:
    /**
     * @param cfg  Engine tunables.
     * @param reg  Function registry for attribution.
     * @param pid  Simulated process id (selects the user segment).
     */
    KvStore(const KvConfig &cfg, FunctionRegistry &reg, unsigned pid);

    /**
     * GET: hash, bucket probe, chain walk, value read, LRU touch.
     * @return the value address (0 on miss; the caller typically
     *         set()s on miss, as a cache client would).
     */
    Addr get(SysCtx &ctx, std::uint64_t key);

    /**
     * SET: hash, bucket probe, slab allocation (evicting the LRU item
     * of the size class when at capacity — its header and value
     * addresses are recycled), value write, chain link.
     * @return the stored value address.
     */
    Addr set(SysCtx &ctx, std::uint64_t key, std::uint32_t blocks);

    /** DELETE: unlink and recycle; @return true if the key existed. */
    bool del(SysCtx &ctx, std::uint64_t key);

    /** Value size class for @p key (1..valueBlocksMax blocks). */
    std::uint32_t
    valueBlocks(std::uint64_t key) const
    {
        return 1 + static_cast<std::uint32_t>(
                       (key * 2654435761u) % cfg_.valueBlocksMax);
    }

    const KvConfig &config() const { return cfg_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t evictions() const { return evictions_; }
    std::size_t residentItems() const { return live_; }

  private:
    static constexpr std::uint32_t kNoItem = 0xFFFFFFFFu;

    /** One resident item: simulated addresses + intrusive LRU links. */
    struct Item
    {
        std::uint64_t key = 0;
        Addr header = 0;
        Addr value = 0;
        std::uint32_t blocks = 0;
        std::uint32_t next = kNoItem; ///< hash-chain link
        std::uint32_t lruPrev = kNoItem, lruNext = kNoItem;
        bool live = false;
    };

    std::uint32_t bucketOf(std::uint64_t key) const;
    std::uint32_t findInChain(SysCtx &ctx, std::uint32_t bucket,
                              std::uint64_t key);
    void lruTouch(SysCtx &ctx, std::uint32_t idx);
    void lruUnlink(std::uint32_t idx);
    void unlinkFromChain(std::uint32_t bucket, std::uint32_t idx);
    std::uint32_t evictLru(SysCtx &ctx);

    KvConfig cfg_;
    BumpAllocator heap_; ///< user heap of the cache process

    Addr bucketBase_ = 0; ///< hash bucket array
    Addr lruHead_ = 0;    ///< LRU list head/tail block (hot)
    Addr statsBlock_ = 0; ///< hit/miss counters (very hot)

    RecyclingAllocator headers_; ///< 64 B item headers, recycled
    /** One recycling arena per value size class (1..valueBlocksMax). */
    std::vector<RecyclingAllocator> slabs_;

    std::vector<std::uint32_t> table_; ///< bucket -> first item index
    std::vector<Item> items_;
    std::vector<std::uint32_t> freeItems_;
    std::uint32_t lruFirst_ = kNoItem, lruLast_ = kNoItem;
    std::size_t live_ = 0;

    FnId fnHash_, fnItem_, fnSlab_, fnLru_;
    std::uint64_t hits_ = 0, evictions_ = 0;
};

} // namespace tstream

#endif // TSTREAM_KV_KVSTORE_HH
