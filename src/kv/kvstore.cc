#include "kv/kvstore.hh"

#include <algorithm>

namespace tstream
{

namespace
{

/** Header bytes of one item (key, flags, CAS, LRU links). */
constexpr std::uint32_t kHeaderBytes = 64;

/** Bytes of one hash bucket head (pointer + lock byte + depth). */
constexpr std::uint32_t kBucketBytes = 16;

/** Carve a bounded recycling arena for item headers out of @p heap. */
RecyclingAllocator
makeHeaderArena(BumpAllocator &heap, std::uint32_t capacity)
{
    const Addr bytes = Addr{capacity + 64} * kHeaderBytes;
    const Addr base = heap.alloc(bytes, kBlockSize);
    return RecyclingAllocator(base, base + bytes, kHeaderBytes);
}

} // namespace

KvStore::KvStore(const KvConfig &cfg, FunctionRegistry &reg,
                 unsigned pid)
    : cfg_(cfg),
      heap_(seg::userHeap(pid), seg::userHeap(pid) + seg::kUserStride),
      headers_(makeHeaderArena(heap_, cfg.capacity)),
      fnHash_(reg.intern("mc_assoc_find", Category::KvHashIndex)),
      fnItem_(reg.intern("mc_item_get", Category::KvHashIndex)),
      fnSlab_(reg.intern("mc_slabs_alloc", Category::KvSlabLru)),
      fnLru_(reg.intern("mc_lru_update", Category::KvSlabLru))
{
    bucketBase_ =
        heap_.alloc(Addr{cfg_.buckets} * kBucketBytes, kBlockSize);
    lruHead_ = heap_.allocBlocks(1);
    statsBlock_ = heap_.allocBlocks(1);

    // Carve one slab arena per size class out of the user segment;
    // each recycles fixed-size value chunks LIFO with a little
    // magazine jitter, memcached-slab style. Each class is sized for
    // the worst case (every resident item in that class).
    slabs_.reserve(cfg_.valueBlocksMax);
    for (std::uint32_t c = 1; c <= cfg_.valueBlocksMax; ++c) {
        const Addr bytes = Addr{cfg_.capacity + 64} * c * kBlockSize;
        const Addr base = heap_.alloc(bytes, kBlockSize);
        slabs_.emplace_back(base, base + bytes, Addr{c} * kBlockSize);
    }

    table_.assign(cfg_.buckets, kNoItem);
    items_.reserve(cfg_.capacity);
}

std::uint32_t
KvStore::bucketOf(std::uint64_t key) const
{
    // Fibonacci-style mix; buckets need not be a power of two.
    return static_cast<std::uint32_t>((key * 0x9E3779B97F4A7C15ull >>
                                       33) %
                                      cfg_.buckets);
}

std::uint32_t
KvStore::findInChain(SysCtx &ctx, std::uint32_t bucket,
                     std::uint64_t key)
{
    // Bucket head probe, then the pointer chase along chained item
    // headers — each probe is one header read at a recycled address.
    ctx.exec(25); // hash + segment selection
    ctx.userRead(bucketBase_ + Addr{bucket} * kBucketBytes,
                 kBucketBytes, fnHash_);
    for (std::uint32_t it = table_[bucket]; it != kNoItem;
         it = items_[it].next) {
        ctx.userRead(items_[it].header, kHeaderBytes, fnHash_);
        if (items_[it].key == key)
            return it;
    }
    return kNoItem;
}

void
KvStore::lruUnlink(std::uint32_t idx)
{
    Item &it = items_[idx];
    if (it.lruPrev != kNoItem)
        items_[it.lruPrev].lruNext = it.lruNext;
    else
        lruFirst_ = it.lruNext;
    if (it.lruNext != kNoItem)
        items_[it.lruNext].lruPrev = it.lruPrev;
    else
        lruLast_ = it.lruPrev;
    it.lruPrev = it.lruNext = kNoItem;
}

void
KvStore::lruTouch(SysCtx &ctx, std::uint32_t idx)
{
    // Move to MRU: update the neighbours' links (their headers) and
    // the global head block — the head block is the hottest line in
    // the cache process, as in memcached's cache_lock era.
    if (lruFirst_ != idx) {
        if (items_[idx].lruPrev != kNoItem)
            ctx.userWrite(items_[items_[idx].lruPrev].header + 48, 8,
                          fnLru_);
        lruUnlink(idx);
        if (lruFirst_ != kNoItem) {
            items_[lruFirst_].lruPrev = idx;
            items_[idx].lruNext = lruFirst_;
        }
        lruFirst_ = idx;
        if (lruLast_ == kNoItem)
            lruLast_ = idx;
    }
    ctx.userRead(lruHead_, 16, fnLru_);
    ctx.userWrite(lruHead_, 16, fnLru_);
    ctx.userWrite(items_[idx].header + 48, 16, fnLru_);
}

void
KvStore::unlinkFromChain(std::uint32_t bucket, std::uint32_t idx)
{
    std::uint32_t *slot = &table_[bucket];
    while (*slot != kNoItem && *slot != idx)
        slot = &items_[*slot].next;
    if (*slot == idx)
        *slot = items_[idx].next;
    items_[idx].next = kNoItem;
}

std::uint32_t
KvStore::evictLru(SysCtx &ctx)
{
    const std::uint32_t victim = lruLast_;
    Item &it = items_[victim];
    // Eviction reads the victim's header, unhooks it from its chain
    // (bucket write) and returns header + value to the recyclers, so
    // the very next allocation revisits these addresses.
    ctx.userRead(it.header, kHeaderBytes, fnSlab_);
    const std::uint32_t bucket = bucketOf(it.key);
    ctx.userWrite(bucketBase_ + Addr{bucket} * kBucketBytes, 8,
                  fnSlab_);
    lruUnlink(victim);
    unlinkFromChain(bucket, victim);
    headers_.free(it.header);
    slabs_[it.blocks - 1].free(it.value);
    it.live = false;
    freeItems_.push_back(victim);
    --live_;
    ++evictions_;
    ctx.exec(40);
    return victim;
}

Addr
KvStore::get(SysCtx &ctx, std::uint64_t key)
{
    const std::uint32_t bucket = bucketOf(key);
    const std::uint32_t idx = findInChain(ctx, bucket, key);
    ctx.userWrite(statsBlock_, 8, fnItem_);
    if (idx == kNoItem)
        return 0;
    Item &it = items_[idx];
    // Read the value through the caches (the response path then
    // re-reads it for checksumming/packetization).
    ctx.userRead(it.value, it.blocks * kBlockSize, fnItem_);
    lruTouch(ctx, idx);
    ++hits_;
    return it.value;
}

Addr
KvStore::set(SysCtx &ctx, std::uint64_t key, std::uint32_t blocks)
{
    blocks = std::max(1u, std::min(blocks, cfg_.valueBlocksMax));
    const std::uint32_t bucket = bucketOf(key);
    std::uint32_t idx = findInChain(ctx, bucket, key);

    if (idx != kNoItem && items_[idx].blocks != blocks) {
        // Size-class change: recycle the old value chunk.
        slabs_[items_[idx].blocks - 1].free(items_[idx].value);
        items_[idx].value = slabs_[blocks - 1].alloc();
        items_[idx].blocks = blocks;
        ctx.exec(30);
    }
    if (idx == kNoItem) {
        if (live_ >= cfg_.capacity)
            evictLru(ctx);
        if (!freeItems_.empty()) {
            idx = freeItems_.back();
            freeItems_.pop_back();
        } else {
            idx = static_cast<std::uint32_t>(items_.size());
            items_.emplace_back();
        }
        Item &it = items_[idx];
        it.key = key;
        it.header = headers_.alloc();
        it.value = slabs_[blocks - 1].alloc();
        it.blocks = blocks;
        it.live = true;
        // Link at the chain head: bucket write + header init.
        it.next = table_[bucket];
        table_[bucket] = idx;
        ctx.userWrite(bucketBase_ + Addr{bucket} * kBucketBytes, 8,
                      fnSlab_);
        it.lruPrev = it.lruNext = kNoItem;
        if (lruFirst_ != kNoItem)
            items_[lruFirst_].lruPrev = idx;
        it.lruNext = lruFirst_;
        lruFirst_ = idx;
        if (lruLast_ == kNoItem)
            lruLast_ = idx;
        ++live_;
    }

    Item &it = items_[idx];
    ctx.userWrite(it.header, kHeaderBytes, fnSlab_);
    ctx.userWrite(it.value, blocks * kBlockSize, fnSlab_);
    ctx.userWrite(statsBlock_, 8, fnSlab_);
    if (idx != lruFirst_)
        lruTouch(ctx, idx);
    return it.value;
}

bool
KvStore::del(SysCtx &ctx, std::uint64_t key)
{
    const std::uint32_t bucket = bucketOf(key);
    const std::uint32_t idx = findInChain(ctx, bucket, key);
    if (idx == kNoItem)
        return false;
    Item &it = items_[idx];
    ctx.userWrite(bucketBase_ + Addr{bucket} * kBucketBytes, 8,
                  fnHash_);
    ctx.userWrite(it.header, 16, fnHash_);
    lruUnlink(idx);
    unlinkFromChain(bucket, idx);
    headers_.free(it.header);
    slabs_[it.blocks - 1].free(it.value);
    it.live = false;
    freeItems_.push_back(idx);
    --live_;
    return true;
}

} // namespace tstream
